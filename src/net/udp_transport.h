// rpc::Transport over a real UDP socket.
//
// The live counterpart of rpc::SimTransport: the same Envelope wire
// format, the same same-instant kBatch coalescing (delay-0 flush timer on
// the EventLoop instead of the Simulator), the same receiver-side
// unbundling — so protocol state machines are byte-for-byte oblivious to
// whether their packets cross a simulated link or the kernel.
//
// Datagram framing (UDP preserves message boundaries, so no length
// prefix is needed for the envelope itself):
//
//   [u32 magic][u32 src NodeId][envelope bytes]
//
// The source NodeId in the header solves reply addressing: replicas are
// configured with each other's endpoints, but clients bind ephemeral
// ports nobody can preconfigure. Receivers learn `src -> sockaddr` from
// each datagram's origin and use the learned map (after the static peer
// table) when sending. The NodeId claim is transport-level only, exactly
// like Envelope::sender: protocol safety rests on the signatures inside
// the body, and the worst a forged header id can do is misdirect a
// reply — indistinguishable from the lossy network the protocol already
// tolerates (§2's unreliable-network model).
#pragma once

#include <cstdint>
#include <map>
#include <netinet/in.h>
#include <optional>
#include <string>
#include <vector>

#include "net/event_loop.h"
#include "rpc/transport.h"
#include "util/stats.h"

namespace bftbc::net {

// An IPv4 endpoint (BFT-BC deployments name replicas explicitly; v4 is
// enough for the localhost and LAN clusters this targets).
struct UdpEndpoint {
  std::uint32_t ip = 0;  // host byte order
  std::uint16_t port = 0;

  // Parses a dotted-quad host ("127.0.0.1"); hostnames are not resolved.
  static std::optional<UdpEndpoint> parse(const std::string& host,
                                          std::uint16_t port);
  std::string to_string() const;
  sockaddr_in to_sockaddr() const;

  friend bool operator==(const UdpEndpoint& a, const UdpEndpoint& b) {
    return a.ip == b.ip && a.port == b.port;
  }
};

struct UdpTransportOptions {
  // Same-instant send coalescing (kBatch), mirroring SimTransport.
  bool coalesce = true;
  // Flush batches early rather than exceed this datagram size; a single
  // envelope larger than the cap is sent alone and may fail (counted as
  // a drop) — the protocol's retransmit machinery owns recovery.
  std::size_t max_datagram = 60 * 1024;
};

class UdpTransport final : public rpc::Transport {
 public:
  // Binds a UDP socket at `bind_to` (port 0 lets the kernel pick — the
  // client configuration) and registers with the loop. `peers` is the
  // static NodeId -> endpoint table (the replicas from the cluster
  // config); anyone else is reachable only once learned from inbound
  // traffic. Aborts via Status-less throw-free design: a failed bind
  // leaves the transport invalid (valid() == false, sends count as
  // drops) so daemons can report and exit cleanly.
  UdpTransport(EventLoop& loop, sim::NodeId id, const UdpEndpoint& bind_to,
               std::map<sim::NodeId, UdpEndpoint> peers,
               UdpTransportOptions options = {});
  ~UdpTransport() override;

  UdpTransport(const UdpTransport&) = delete;
  UdpTransport& operator=(const UdpTransport&) = delete;

  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  std::uint16_t local_port() const { return local_port_; }

  sim::NodeId node_id() const override { return id_; }
  void send(sim::NodeId to, const rpc::Envelope& env) override;
  void set_receiver(Receiver receiver) override;

  // Same counter vocabulary as sim::Network ("msgs_sent", "bytes_sent",
  // "msgs_delivered", "bytes_delivered", "msgs_dropped", "encode_calls")
  // so bench JSON folds identically for simulated and live runs.
  const Counters& counters() const { return counters_; }

 private:
  void send_now(sim::NodeId to, const rpc::Envelope& env);
  void send_payload(sim::NodeId to, const EncodedMessage& payload);
  void flush_sends();
  void on_readable();
  void deliver_bundle(sim::NodeId from, BytesView body);
  const sockaddr_in* addr_for(sim::NodeId to);

  EventLoop& loop_;
  sim::NodeId id_;
  UdpTransportOptions options_;
  int fd_ = -1;
  std::uint16_t local_port_ = 0;
  Receiver receiver_;

  std::map<sim::NodeId, sockaddr_in> peers_;    // configured (replicas)
  std::map<sim::NodeId, sockaddr_in> learned_;  // observed (clients)

  // Same-instant coalescing state, one-for-one with SimTransport.
  std::map<sim::NodeId, std::vector<rpc::Envelope>> pending_;
  sim::TimerId flush_timer_ = 0;
  bool flush_scheduled_ = false;

  Counters counters_;
};

}  // namespace bftbc::net
