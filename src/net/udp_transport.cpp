#include "net/udp_transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/codec.h"

namespace bftbc::net {

namespace {

// First header word of every datagram; anything else is dropped before
// envelope decoding (stray traffic on the port, cross-version peers).
constexpr std::uint32_t kDatagramMagic = 0xBF7BC001u;
constexpr std::size_t kHeaderSize = 8;  // magic + src NodeId

std::uint32_t read_u32le(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 |
         static_cast<std::uint32_t>(p[3]) << 24;
}

bool same_addr(const sockaddr_in& a, const sockaddr_in& b) {
  return a.sin_addr.s_addr == b.sin_addr.s_addr && a.sin_port == b.sin_port;
}

}  // namespace

std::optional<UdpEndpoint> UdpEndpoint::parse(const std::string& host,
                                              std::uint16_t port) {
  in_addr addr{};
  if (inet_pton(AF_INET, host.c_str(), &addr) != 1) return std::nullopt;
  UdpEndpoint ep;
  ep.ip = ntohl(addr.s_addr);
  ep.port = port;
  return ep;
}

std::string UdpEndpoint::to_string() const {
  in_addr addr{};
  addr.s_addr = htonl(ip);
  char buf[INET_ADDRSTRLEN] = {};
  inet_ntop(AF_INET, &addr, buf, sizeof(buf));
  return std::string(buf) + ":" + std::to_string(port);
}

sockaddr_in UdpEndpoint::to_sockaddr() const {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_addr.s_addr = htonl(ip);
  sa.sin_port = htons(port);
  return sa;
}

UdpTransport::UdpTransport(EventLoop& loop, sim::NodeId id,
                           const UdpEndpoint& bind_to,
                           std::map<sim::NodeId, UdpEndpoint> peers,
                           UdpTransportOptions options)
    : loop_(loop), id_(id), options_(options) {
  for (const auto& [node, ep] : peers) peers_[node] = ep.to_sockaddr();

  fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd_ < 0) return;
  const sockaddr_in sa = bind_to.to_sockaddr();
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&sa), sizeof(sa)) != 0) {
    ::close(fd_);
    fd_ = -1;
    return;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    local_port_ = ntohs(bound.sin_port);
  }
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
  loop_.watch_fd(fd_, [this] { on_readable(); });
}

UdpTransport::~UdpTransport() {
  if (flush_scheduled_) {
    loop_.cancel(flush_timer_);
    // Mirror of SimTransport teardown: an envelope accepted by send()
    // must not silently vanish — drain the coalescing remainder onto the
    // socket before closing it.
    flush_sends();
  }
  if (fd_ >= 0) {
    loop_.unwatch_fd(fd_);
    ::close(fd_);
  }
}

void UdpTransport::set_receiver(Receiver receiver) {
  receiver_ = std::move(receiver);
}

const sockaddr_in* UdpTransport::addr_for(sim::NodeId to) {
  auto it = peers_.find(to);
  if (it != peers_.end()) return &it->second;
  it = learned_.find(to);
  if (it != learned_.end()) return &it->second;
  return nullptr;
}

void UdpTransport::send(sim::NodeId to, const rpc::Envelope& env) {
  if (!options_.coalesce) {
    send_now(to, env);
    return;
  }
  pending_[to].push_back(env);
  if (!flush_scheduled_) {
    flush_scheduled_ = true;
    // Delay 0 fires after the current socket drain completes, so one
    // flush gathers every send of this wakeup — the live analogue of
    // SimTransport's same-virtual-instant coalescing.
    flush_timer_ = loop_.schedule(0, [this] { flush_sends(); });
  }
}

void UdpTransport::send_now(sim::NodeId to, const rpc::Envelope& env) {
  if (!env.has_cached_encoding()) counters_.inc("encode_calls");
  send_payload(to, env.shared_encoding());
}

void UdpTransport::send_payload(sim::NodeId to, const EncodedMessage& payload) {
  counters_.inc("msgs_sent");
  counters_.inc("bytes_sent", payload.size());
  const sockaddr_in* dst = fd_ >= 0 ? addr_for(to) : nullptr;
  if (dst == nullptr) {
    // Unknown destination (a client we have not heard from yet) or an
    // invalid socket: identical to a lossy link — count and move on,
    // retransmission recovers.
    counters_.inc("msgs_dropped");
    return;
  }
  Writer w;
  w.put_u32(kDatagramMagic);
  w.put_u32(id_);
  w.put_raw(payload.view());
  const Bytes datagram = std::move(w).take();
  const ssize_t n =
      ::sendto(fd_, datagram.data(), datagram.size(), 0,
               reinterpret_cast<const sockaddr*>(dst), sizeof(*dst));
  if (n != static_cast<ssize_t>(datagram.size())) {
    counters_.inc("msgs_dropped");
  }
}

void UdpTransport::flush_sends() {
  flush_scheduled_ = false;
  std::map<sim::NodeId, std::vector<rpc::Envelope>> pending;
  pending.swap(pending_);
  for (auto& [to, envs] : pending) {
    if (envs.size() == 1) {
      send_now(to, envs.front());
      continue;
    }
    // Pack sub-envelopes into kBatch bundles, starting a fresh bundle
    // whenever the next envelope would push the datagram past the cap.
    std::size_t i = 0;
    while (i < envs.size()) {
      Writer body;
      std::uint32_t count = 0;
      std::size_t batch_size = kHeaderSize;
      while (i < envs.size()) {
        const rpc::Envelope& sub = envs[i];
        if (!sub.has_cached_encoding()) counters_.inc("encode_calls");
        const EncodedMessage& enc = sub.shared_encoding();
        if (count > 0 && batch_size + enc.size() > options_.max_datagram) {
          break;
        }
        body.put_bytes(enc.view());
        batch_size += enc.size() + 5;  // varint length prefix worst case
        ++count;
        ++i;
      }
      if (count == 1) {
        send_now(to, envs[i - 1]);
        continue;
      }
      Writer w;
      w.put_u32(count);
      w.put_raw(body.data());
      rpc::Envelope batch;
      batch.type = rpc::MsgType::kBatch;
      batch.body = std::move(w).take();
      send_now(to, batch);
    }
  }
}

void UdpTransport::on_readable() {
  // Drain everything the kernel buffered for this wakeup; the EventLoop
  // fires delay-0 timers only after the drain, so all these deliveries
  // share one "instant" (feeding replica same-tick batch verification).
  std::uint8_t buf[64 * 1024];
  while (fd_ >= 0) {
    sockaddr_in src{};
    socklen_t srclen = sizeof(src);
    const ssize_t n = ::recvfrom(fd_, buf, sizeof(buf), 0,
                                 reinterpret_cast<sockaddr*>(&src), &srclen);
    if (n < 0) return;  // EAGAIN/EWOULDBLOCK: drained
    if (static_cast<std::size_t>(n) < kHeaderSize) continue;
    if (read_u32le(buf) != kDatagramMagic) continue;  // stray traffic
    const sim::NodeId from = read_u32le(buf + 4);

    if (!receiver_) continue;
    const BytesView body(buf + kHeaderSize,
                         static_cast<std::size_t>(n) - kHeaderSize);
    auto env = rpc::Envelope::decode(body);
    if (!env.has_value()) continue;  // corrupted / garbage: drop silently

    // Learn (or refresh) the sender's return address — ephemeral client
    // ports make this the only reply route. This must come AFTER the
    // decode verdict: the 8-byte header is forgeable, so a garbage
    // datagram naming a client's NodeId must not redirect that client's
    // replies to the attacker's source address. Configured peers are
    // pinned either way: a forged header naming a replica never moves
    // its route.
    if (peers_.count(from) == 0) {
      auto it = learned_.find(from);
      if (it == learned_.end() || !same_addr(it->second, src)) {
        learned_[from] = src;
      }
    }
    counters_.inc("msgs_delivered");
    counters_.inc("bytes_delivered", body.size());
    if (env->type == rpc::MsgType::kBatch) {
      deliver_bundle(from, env->body);
      continue;
    }
    receiver_(from, *env);
  }
}

void UdpTransport::deliver_bundle(sim::NodeId from, BytesView body) {
  Reader r(body);
  const std::uint32_t count = r.get_u32();
  for (std::uint32_t i = 0; i < count && r.ok(); ++i) {
    // Re-checked every iteration, as in SimTransport: a handler may
    // clear the receiver mid-bundle (shutdown), and invoking an empty
    // std::function is UB.
    if (!receiver_) return;
    auto sub = rpc::Envelope::decode(r.get_bytes());
    // Nested bundles are never produced; drop them so a Byzantine sender
    // cannot build unbounded recursion.
    if (!sub.has_value() || sub->type == rpc::MsgType::kBatch) continue;
    receiver_(from, *sub);
  }
}

}  // namespace bftbc::net
