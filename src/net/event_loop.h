// Live event loop: the sim::Scheduler contract over real time and fds.
//
// The protocol stack (Client, Replica, QuorumCall) is written against
// sim::Scheduler + rpc::Transport only. EventLoop is the deployment-side
// implementation of the first half: monotonic wall-clock now(), timers on
// a hashed timer wheel, and readable-fd dispatch via epoll (with a poll()
// fallback when epoll is unavailable). Pairing it with net::UdpTransport
// runs the identical state machines that the discrete-event Simulator
// drives in tests.
//
// Scheduler contract (see sim/simulator.h): TimerId 0 is never handed
// out, ids are never reused, and cancel(0) / cancel(fired id) are no-ops.
//
// Ordering: timers due at the same wheel tick fire in (deadline,
// insertion id) order, mirroring the simulator's same-time FIFO
// tie-break. Zero-delay timers scheduled while draining sockets fire in
// the same loop iteration, after the fd handlers — this is what keeps
// SimTransport-style same-instant coalescing and the replicas' same-tick
// batch verification working unchanged over UDP: every datagram drained
// in one wakeup lands before the delay-0 flush/verify timers run.
//
// Single-threaded by design, like the simulator: all calls (including
// schedule/cancel) must come from the loop thread or before run().
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <functional>
#include <list>
#include <unordered_map>
#include <vector>

#include "sim/simulator.h"

namespace bftbc::net {

class EventLoop final : public sim::Scheduler {
 public:
  // `force_poll` skips epoll even where available — tests exercise the
  // poll() fallback path on Linux through this.
  explicit EventLoop(bool force_poll = false);
  ~EventLoop() override;

  // Nanoseconds of CLOCK_MONOTONIC elapsed since this loop was built.
  // Starting near zero keeps values comparable to the simulator's
  // virtual timeline (and safely inside sim::Time's unsigned range).
  sim::Time now() const override;

  sim::TimerId schedule(sim::Time delay, std::function<void()> fn) override;
  void cancel(sim::TimerId id) override;

  // Readable-fd watch: `on_readable` runs each time `fd` polls readable.
  // One handler per fd; re-watching replaces it. Handlers may watch or
  // unwatch fds (including their own) from inside the callback.
  using FdHandler = std::function<void()>;
  void watch_fd(int fd, FdHandler on_readable);
  void unwatch_fd(int fd);

  // One iteration: wait up to `max_wait` for fd readiness (shortened when
  // timers are pending), dispatch ready fd handlers, then fire due
  // timers. Returns the number of fd events plus timers fired.
  std::size_t poll_once(sim::Time max_wait = 10 * sim::kMillisecond);

  // Iterate until stop() is called (from a timer or fd handler).
  void run();
  void stop() { stopped_ = true; }

  // Iterate until pred() holds or `timeout` elapses; true iff pred held.
  bool run_until(const std::function<bool()>& pred, sim::Time timeout);

  bool using_epoll() const { return epoll_fd_ >= 0; }
  std::size_t pending_timers() const { return timer_index_.size(); }

 private:
  struct Timer {
    sim::TimerId id = 0;
    sim::Time deadline = 0;
    std::function<void()> fn;
  };
  using Slot = std::list<Timer>;

  // 256 slots x 1ms tick: one wheel turn covers the retransmit/deadline
  // range the protocol actually uses; longer timers simply stay in their
  // slot across turns (each expiry scan re-checks the deadline).
  static constexpr std::size_t kWheelBits = 8;
  static constexpr std::size_t kWheelSlots = std::size_t{1} << kWheelBits;
  static constexpr sim::Time kTickNs = sim::kMillisecond;

  static std::size_t slot_of(sim::Time deadline) {
    return static_cast<std::size_t>(deadline / kTickNs) & (kWheelSlots - 1);
  }

  std::size_t fire_due_timers();
  std::size_t wait_and_dispatch_fds(sim::Time max_wait);
  bool timer_due(sim::Time at) const;

  std::chrono::steady_clock::time_point epoch_;
  int epoll_fd_ = -1;  // -1 => poll() fallback
  std::unordered_map<int, FdHandler> fd_handlers_;

  std::array<Slot, kWheelSlots> wheel_;
  // id -> (slot, node) for O(1) cancel; also the pending-timer count.
  std::unordered_map<sim::TimerId, std::pair<std::size_t, Slot::iterator>>
      timer_index_;
  sim::TimerId next_timer_id_ = 1;  // 0 is the "no timer" sentinel
  bool stopped_ = false;
};

}  // namespace bftbc::net
