#include "crypto/prime.h"

namespace bftbc::crypto {

namespace {

constexpr std::uint32_t kSmallPrimes[] = {
    2,   3,   5,   7,   11,  13,  17,  19,  23,  29,  31,  37,  41,  43,
    47,  53,  59,  61,  67,  71,  73,  79,  83,  89,  97,  101, 103, 107,
    109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181,
    191, 193, 197, 199, 211, 223, 227, 229, 233, 239, 241, 251};

}  // namespace

bool is_probable_prime(const BigInt& n, Rng& rng, int rounds) {
  if (n < BigInt(2)) return false;
  for (std::uint32_t p : kSmallPrimes) {
    const BigInt bp(p);
    if (n == bp) return true;
    if ((n % bp).is_zero()) return false;
  }

  // Write n-1 = d * 2^r with d odd.
  const BigInt n_minus_1 = n - BigInt(1);
  BigInt d = n_minus_1;
  std::size_t r = 0;
  while (!d.is_odd()) {
    d = d.shifted_right(1);
    ++r;
  }

  const BigInt one(1);
  const BigInt two(2);
  const BigInt n_minus_3 = n - BigInt(3);
  for (int i = 0; i < rounds; ++i) {
    // a uniform in [2, n-2]
    const BigInt a = BigInt::random_below(rng, n_minus_3) + two;
    BigInt x = BigInt::mod_exp(a, d, n);
    if (x == one || x == n_minus_1) continue;
    bool witness = true;
    for (std::size_t j = 0; j + 1 < r; ++j) {
      x = (x * x) % n;
      if (x == n_minus_1) {
        witness = false;
        break;
      }
    }
    if (witness) return false;
  }
  return true;
}

BigInt generate_prime(Rng& rng, std::size_t bits, int rounds) {
  for (;;) {
    BigInt candidate = BigInt::random_with_bits(rng, bits);
    if (!candidate.is_odd()) candidate = candidate + BigInt(1);
    if (is_probable_prime(candidate, rng, rounds)) return candidate;
  }
}

}  // namespace bftbc::crypto
