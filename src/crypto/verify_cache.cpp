#include "crypto/verify_cache.h"

namespace bftbc::crypto {

int VerifyCache::lookup(const Key& key) {
  auto it = index_.find(key);
  if (it == index_.end()) return -1;
  // Refresh: splice the entry to the front of the LRU list.
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->valid ? 1 : 0;
}

void VerifyCache::insert(const Key& key, bool valid) {
  if (capacity_ == 0) return;
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->valid = valid;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  while (lru_.size() >= capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
  }
  lru_.push_front(Entry{key, valid});
  index_[key] = lru_.begin();
}

void VerifyCache::purge_principal(PrincipalId principal) {
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->key.principal == principal) {
      index_.erase(it->key);
      it = lru_.erase(it);
    } else {
      ++it;
    }
  }
}

void VerifyCache::clear() {
  lru_.clear();
  index_.clear();
}

void VerifyCache::set_capacity(std::size_t capacity) {
  capacity_ = capacity;
  if (capacity_ == 0) {
    clear();
    return;
  }
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
  }
}

}  // namespace bftbc::crypto
