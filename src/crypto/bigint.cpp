#include "crypto/bigint.h"

#include <algorithm>
#include <cassert>

#include "util/hex.h"

namespace bftbc::crypto {

namespace {
using u32 = std::uint32_t;
using u64 = std::uint64_t;
}  // namespace

BigInt::BigInt(u64 v) {
  if (v != 0) limbs_.push_back(static_cast<u32>(v));
  if (v >> 32) limbs_.push_back(static_cast<u32>(v >> 32));
}

void BigInt::normalize() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

BigInt BigInt::from_limbs(std::vector<u32> limbs) {
  BigInt r;
  r.limbs_ = std::move(limbs);
  r.normalize();
  return r;
}

BigInt BigInt::from_bytes(BytesView be) {
  BigInt r;
  r.limbs_.assign((be.size() + 3) / 4, 0);
  for (std::size_t i = 0; i < be.size(); ++i) {
    // byte i counted from the end is byte (be.size()-1-i) of the buffer
    const std::size_t pos = be.size() - 1 - i;
    r.limbs_[i / 4] |= static_cast<u32>(be[pos]) << (8 * (i % 4));
  }
  r.normalize();
  return r;
}

Bytes BigInt::to_bytes() const {
  if (is_zero()) return {};
  const std::size_t bytes = (bit_length() + 7) / 8;
  return to_bytes_padded(bytes);
}

Bytes BigInt::to_bytes_padded(std::size_t n) const {
  Bytes out(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t limb = i / 4;
    if (limb >= limbs_.size()) break;
    out[n - 1 - i] = static_cast<std::uint8_t>(limbs_[limb] >> (8 * (i % 4)));
  }
  return out;
}

BigInt BigInt::from_hex(std::string_view hex) {
  std::string padded(hex);
  if (padded.size() % 2 != 0) padded.insert(padded.begin(), '0');
  auto bytes = bftbc::from_hex(padded);
  assert(bytes.has_value() && "invalid hex in BigInt::from_hex");
  return from_bytes(*bytes);
}

std::string BigInt::to_hex() const {
  if (is_zero()) return "0";
  std::string h = bftbc::to_hex(to_bytes());
  // strip leading zero nibble
  std::size_t i = 0;
  while (i + 1 < h.size() && h[i] == '0') ++i;
  return h.substr(i);
}

BigInt BigInt::random_with_bits(Rng& rng, std::size_t bits) {
  assert(bits > 0);
  const std::size_t nlimbs = (bits + 31) / 32;
  std::vector<u32> limbs(nlimbs);
  for (auto& l : limbs) l = rng.next_u32();
  const std::size_t top_bit = (bits - 1) % 32;
  // Force exact bit length and clear anything above it.
  limbs.back() &= (top_bit == 31) ? ~u32{0} : ((u32{1} << (top_bit + 1)) - 1);
  limbs.back() |= u32{1} << top_bit;
  return from_limbs(std::move(limbs));
}

BigInt BigInt::random_below(Rng& rng, const BigInt& bound) {
  assert(!bound.is_zero());
  const std::size_t bits = bound.bit_length();
  // Rejection sampling; each attempt succeeds with probability > 1/2.
  for (;;) {
    BigInt candidate;
    const std::size_t nlimbs = (bits + 31) / 32;
    std::vector<u32> limbs(nlimbs);
    for (auto& l : limbs) l = rng.next_u32();
    const std::size_t top_bit = (bits - 1) % 32;
    limbs.back() &= (top_bit == 31) ? ~u32{0} : ((u32{1} << (top_bit + 1)) - 1);
    candidate = from_limbs(std::move(limbs));
    if (candidate < bound) return candidate;
  }
}

std::size_t BigInt::bit_length() const {
  if (limbs_.empty()) return 0;
  u32 top = limbs_.back();
  std::size_t bits = (limbs_.size() - 1) * 32;
  while (top != 0) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

bool BigInt::bit(std::size_t i) const {
  const std::size_t limb = i / 32;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % 32)) & 1;
}

u64 BigInt::to_u64() const {
  u64 v = 0;
  if (!limbs_.empty()) v = limbs_[0];
  if (limbs_.size() > 1) v |= static_cast<u64>(limbs_[1]) << 32;
  return v;
}

int BigInt::compare(const BigInt& a, const BigInt& b) {
  if (a.limbs_.size() != b.limbs_.size())
    return a.limbs_.size() < b.limbs_.size() ? -1 : 1;
  for (std::size_t i = a.limbs_.size(); i-- > 0;) {
    if (a.limbs_[i] != b.limbs_[i]) return a.limbs_[i] < b.limbs_[i] ? -1 : 1;
  }
  return 0;
}

BigInt operator+(const BigInt& a, const BigInt& b) {
  const auto& x = a.limbs_;
  const auto& y = b.limbs_;
  std::vector<u32> out(std::max(x.size(), y.size()) + 1, 0);
  u64 carry = 0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    u64 sum = carry;
    if (i < x.size()) sum += x[i];
    if (i < y.size()) sum += y[i];
    out[i] = static_cast<u32>(sum);
    carry = sum >> 32;
  }
  return BigInt::from_limbs(std::move(out));
}

BigInt operator-(const BigInt& a, const BigInt& b) {
  assert(a >= b && "BigInt subtraction underflow");
  std::vector<u32> out(a.limbs_.size(), 0);
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < a.limbs_.size(); ++i) {
    std::int64_t diff = static_cast<std::int64_t>(a.limbs_[i]) - borrow -
                        (i < b.limbs_.size() ? b.limbs_[i] : 0);
    if (diff < 0) {
      diff += (std::int64_t{1} << 32);
      borrow = 1;
    } else {
      borrow = 0;
    }
    out[i] = static_cast<u32>(diff);
  }
  return BigInt::from_limbs(std::move(out));
}

BigInt operator*(const BigInt& a, const BigInt& b) {
  if (a.is_zero() || b.is_zero()) return BigInt();
  std::vector<u32> out(a.limbs_.size() + b.limbs_.size(), 0);
  for (std::size_t i = 0; i < a.limbs_.size(); ++i) {
    u64 carry = 0;
    const u64 ai = a.limbs_[i];
    for (std::size_t j = 0; j < b.limbs_.size(); ++j) {
      u64 cur = out[i + j] + ai * b.limbs_[j] + carry;
      out[i + j] = static_cast<u32>(cur);
      carry = cur >> 32;
    }
    out[i + b.limbs_.size()] += static_cast<u32>(carry);
  }
  return BigInt::from_limbs(std::move(out));
}

BigInt BigInt::shifted_left(std::size_t bits) const {
  if (is_zero() || bits == 0) {
    BigInt copy = *this;
    return copy;
  }
  const std::size_t limb_shift = bits / 32;
  const std::size_t bit_shift = bits % 32;
  std::vector<u32> out(limbs_.size() + limb_shift + 1, 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    const u64 v = static_cast<u64>(limbs_[i]) << bit_shift;
    out[i + limb_shift] |= static_cast<u32>(v);
    out[i + limb_shift + 1] |= static_cast<u32>(v >> 32);
  }
  return from_limbs(std::move(out));
}

BigInt BigInt::shifted_right(std::size_t bits) const {
  const std::size_t limb_shift = bits / 32;
  const std::size_t bit_shift = bits % 32;
  if (limb_shift >= limbs_.size()) return BigInt();
  std::vector<u32> out(limbs_.size() - limb_shift, 0);
  for (std::size_t i = 0; i < out.size(); ++i) {
    u64 v = limbs_[i + limb_shift] >> bit_shift;
    if (bit_shift != 0 && i + limb_shift + 1 < limbs_.size())
      v |= static_cast<u64>(limbs_[i + limb_shift + 1]) << (32 - bit_shift);
    out[i] = static_cast<u32>(v);
  }
  return from_limbs(std::move(out));
}

BigInt::DivResult BigInt::divmod(const BigInt& a, const BigInt& b) {
  assert(!b.is_zero() && "BigInt division by zero");
  if (compare(a, b) < 0) return {BigInt(), a};
  if (b.limbs_.size() == 1) {
    // Fast path: single-limb divisor.
    const u64 d = b.limbs_[0];
    std::vector<u32> q(a.limbs_.size(), 0);
    u64 rem = 0;
    for (std::size_t i = a.limbs_.size(); i-- > 0;) {
      const u64 cur = (rem << 32) | a.limbs_[i];
      q[i] = static_cast<u32>(cur / d);
      rem = cur % d;
    }
    return {from_limbs(std::move(q)), BigInt(rem)};
  }

  // Knuth TAOCP vol. 2, Algorithm D.
  // D1: normalize so the divisor's top limb has its high bit set.
  const std::size_t shift = 32 - (b.bit_length() % 32 == 0
                                      ? 32
                                      : b.bit_length() % 32);
  const BigInt un = a.shifted_left(shift);
  const BigInt vn = b.shifted_left(shift);
  const std::size_t n = vn.limbs_.size();
  const std::size_t m = un.limbs_.size() >= n ? un.limbs_.size() - n : 0;

  std::vector<u32> u(un.limbs_);
  u.resize(un.limbs_.size() + 1, 0);  // extra high limb for D4 borrows
  const std::vector<u32>& v = vn.limbs_;

  std::vector<u32> q(m + 1, 0);

  for (std::size_t j = m + 1; j-- > 0;) {
    // D3: estimate q̂ from the top two limbs.
    const u64 top = (static_cast<u64>(u[j + n]) << 32) | u[j + n - 1];
    u64 qhat = top / v[n - 1];
    u64 rhat = top % v[n - 1];
    while (qhat >= (u64{1} << 32) ||
           qhat * v[n - 2] > ((rhat << 32) | u[j + n - 2])) {
      --qhat;
      rhat += v[n - 1];
      if (rhat >= (u64{1} << 32)) break;
    }

    // D4: multiply and subtract u[j..j+n] -= qhat * v.
    std::int64_t borrow = 0;
    u64 carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const u64 p = qhat * v[i] + carry;
      carry = p >> 32;
      std::int64_t diff = static_cast<std::int64_t>(u[i + j]) -
                          static_cast<std::int64_t>(p & 0xffffffffULL) - borrow;
      if (diff < 0) {
        diff += (std::int64_t{1} << 32);
        borrow = 1;
      } else {
        borrow = 0;
      }
      u[i + j] = static_cast<u32>(diff);
    }
    std::int64_t diff = static_cast<std::int64_t>(u[j + n]) -
                        static_cast<std::int64_t>(carry) - borrow;
    bool negative = diff < 0;
    u[j + n] = static_cast<u32>(diff);

    // D5/D6: q̂ was one too large — add back.
    if (negative) {
      --qhat;
      u64 c = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const u64 sum = static_cast<u64>(u[i + j]) + v[i] + c;
        u[i + j] = static_cast<u32>(sum);
        c = sum >> 32;
      }
      u[j + n] = static_cast<u32>(u[j + n] + c);
    }
    q[j] = static_cast<u32>(qhat);
  }

  // D8: denormalize the remainder.
  u.resize(n);
  BigInt rem = from_limbs(std::move(u)).shifted_right(shift);
  return {from_limbs(std::move(q)), std::move(rem)};
}

BigInt BigInt::mod_exp(const BigInt& base, const BigInt& exp, const BigInt& m) {
  assert(compare(m, BigInt(1)) > 0);
  if (m.is_odd()) return Montgomery(m).mod_exp(base, exp);
  return mod_exp_schoolbook(base, exp, m);
}

BigInt BigInt::mod_exp_schoolbook(const BigInt& base, const BigInt& exp,
                                  const BigInt& m) {
  assert(compare(m, BigInt(1)) > 0);
  BigInt result(1);
  BigInt b = base % m;
  const std::size_t bits = exp.bit_length();
  for (std::size_t i = bits; i-- > 0;) {
    result = (result * result) % m;
    if (exp.bit(i)) result = (result * b) % m;
  }
  return result;
}

// ------------------------------------------------------------ Montgomery

Montgomery::Montgomery(const BigInt& m) : m_(m) {
  assert(m.is_odd() && "Montgomery requires an odd modulus");
  assert(BigInt::compare(m, BigInt(1)) > 0);
  n_ = m_.limbs_.size();
  // n0_ = -m^-1 mod 2^32 by Newton iteration: for odd m0, x = m0 is an
  // inverse mod 2^3; each x *= 2 - m0*x step doubles the valid bits.
  const u32 m0 = m_.limbs_[0];
  u32 x = m0;
  for (int i = 0; i < 5; ++i) x *= 2 - m0 * x;
  n0_ = ~x + 1;  // negate mod 2^32
  rr_ = BigInt(1).shifted_left(64 * n_) % m_;
  one_ = BigInt(1).shifted_left(32 * n_) % m_;
}

// CIOS multiplication+reduction (Koç et al., "Analyzing and Comparing
// Montgomery Multiplication Algorithms"): interleaves the schoolbook
// product with the reduction so the intermediate never exceeds n+2
// limbs. Inputs must be < m (zero-padded to n limbs); out = a*b*R^-1
// mod m with R = 2^(32*n).
void Montgomery::mont_mul_into(const u32* a, std::size_t a_size, const u32* b,
                               std::size_t b_size,
                               std::vector<u32>& out) const {
  const std::vector<u32>& m = m_.limbs_;
  std::vector<u64> t(n_ + 2, 0);
  for (std::size_t i = 0; i < n_; ++i) {
    const u64 ai = i < a_size ? a[i] : 0;
    u64 carry = 0;
    for (std::size_t j = 0; j < n_; ++j) {
      const u64 bj = j < b_size ? b[j] : 0;
      const u64 cur = static_cast<u64>(static_cast<u32>(t[j])) + ai * bj + carry;
      t[j] = static_cast<u32>(cur);
      carry = cur >> 32;
    }
    u64 cur = static_cast<u64>(static_cast<u32>(t[n_])) + carry;
    t[n_] = static_cast<u32>(cur);
    t[n_ + 1] = cur >> 32;

    const u32 mfac = static_cast<u32>(t[0]) * n0_;
    cur = static_cast<u64>(static_cast<u32>(t[0])) + static_cast<u64>(mfac) * m[0];
    carry = cur >> 32;  // low 32 bits are zero by construction
    for (std::size_t j = 1; j < n_; ++j) {
      cur = static_cast<u64>(static_cast<u32>(t[j])) +
            static_cast<u64>(mfac) * m[j] + carry;
      t[j - 1] = static_cast<u32>(cur);
      carry = cur >> 32;
    }
    cur = static_cast<u64>(static_cast<u32>(t[n_])) + carry;
    t[n_ - 1] = static_cast<u32>(cur);
    t[n_] = t[n_ + 1] + (cur >> 32);  // <= 1; cannot overflow 64 bits
    t[n_ + 1] = 0;
  }

  out.assign(n_ + 1, 0);
  for (std::size_t i = 0; i <= n_; ++i) out[i] = static_cast<u32>(t[i]);
  // Conditional final subtraction: the CIOS invariant keeps the result
  // below 2m, so at most one subtract of m is needed.
  bool ge = out[n_] != 0;
  if (!ge) {
    ge = true;
    for (std::size_t i = n_; i-- > 0;) {
      if (out[i] != m[i]) {
        ge = out[i] > m[i];
        break;
      }
    }
  }
  if (ge) {
    std::int64_t borrow = 0;
    for (std::size_t i = 0; i < n_; ++i) {
      std::int64_t diff = static_cast<std::int64_t>(out[i]) - m[i] - borrow;
      if (diff < 0) {
        diff += (std::int64_t{1} << 32);
        borrow = 1;
      } else {
        borrow = 0;
      }
      out[i] = static_cast<u32>(diff);
    }
    out[n_] = static_cast<u32>(static_cast<std::int64_t>(out[n_]) - borrow);
  }
}

BigInt Montgomery::mont_mul(const BigInt& a, const BigInt& b) const {
  assert(a < m_ && b < m_);
  std::vector<u32> out;
  mont_mul_into(a.limbs_.data(), a.limbs_.size(), b.limbs_.data(),
                b.limbs_.size(), out);
  return BigInt::from_limbs(std::move(out));
}

BigInt Montgomery::to_mont(const BigInt& a) const {
  const BigInt reduced = a < m_ ? a : a % m_;
  return mont_mul(reduced, rr_);
}

BigInt Montgomery::from_mont(const BigInt& a) const {
  return mont_mul(a, BigInt(1));
}

BigInt Montgomery::mod_exp(const BigInt& base, const BigInt& exp) const {
  const std::size_t bits = exp.bit_length();
  if (bits == 0) return BigInt(1) % m_;

  // Fixed 4-bit windows: 16-entry table of base powers in the domain,
  // then 4 squarings + at most one table multiply per window.
  const BigInt bm = to_mont(base);
  BigInt table[16];
  table[0] = one_;
  table[1] = bm;
  for (int i = 2; i < 16; ++i) table[i] = mont_mul(table[i - 1], bm);

  auto window_at = [&exp](std::size_t hi) {
    // 4 bits ending at bit index hi-3 (hi is the window's top bit).
    unsigned w = 0;
    for (int k = 3; k >= 0; --k) {
      w <<= 1;
      if (hi >= static_cast<std::size_t>(3 - k) &&
          exp.bit(hi - static_cast<std::size_t>(3 - k)))
        w |= 1;
    }
    return w;
  };

  const std::size_t windows = (bits + 3) / 4;
  std::size_t top = windows * 4 - 1;  // top bit index of the first window
  BigInt acc = table[window_at(top)];
  while (top >= 4) {
    top -= 4;
    acc = mont_mul(acc, acc);
    acc = mont_mul(acc, acc);
    acc = mont_mul(acc, acc);
    acc = mont_mul(acc, acc);
    const unsigned w = window_at(top);
    if (w != 0) acc = mont_mul(acc, table[w]);
  }
  return from_mont(acc);
}

BigInt BigInt::gcd(BigInt a, BigInt b) {
  while (!b.is_zero()) {
    BigInt r = a % b;
    a = std::move(b);
    b = std::move(r);
  }
  return a;
}

BigInt BigInt::mod_inverse(const BigInt& a, const BigInt& m) {
  // Extended Euclid tracking coefficients for `a` only, with signs
  // handled by keeping values reduced mod m.
  if (m.is_zero() || a.is_zero()) return BigInt();
  BigInt r0 = m, r1 = a % m;
  // t coefficients with explicit sign flags (unsigned BigInt).
  BigInt t0(0), t1(1);
  bool t0_neg = false, t1_neg = false;
  while (!r1.is_zero()) {
    const DivResult d = divmod(r0, r1);
    // (r0, r1) = (r1, r0 - q*r1)
    BigInt r2 = d.remainder;
    // t2 = t0 - q*t1 with sign tracking
    BigInt qt1 = d.quotient * t1;
    BigInt t2;
    bool t2_neg;
    if (t0_neg == t1_neg) {
      if (t0 >= qt1) {
        t2 = t0 - qt1;
        t2_neg = t0_neg;
      } else {
        t2 = qt1 - t0;
        t2_neg = !t0_neg;
      }
    } else {
      t2 = t0 + qt1;
      t2_neg = t0_neg;
    }
    r0 = std::move(r1);
    r1 = std::move(r2);
    t0 = std::move(t1);
    t0_neg = t1_neg;
    t1 = std::move(t2);
    t1_neg = t2_neg;
  }
  if (!r0.is_one()) return BigInt();  // not coprime
  BigInt inv = t0 % m;
  if (t0_neg && !inv.is_zero()) inv = m - inv;
  return inv;
}

}  // namespace bftbc::crypto
