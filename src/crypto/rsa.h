// RSA signatures with PKCS#1 v1.5 padding over SHA-256, from scratch.
//
// The paper requires unforgeable digital signatures for the statements
// that travel inside certificates (phase-2 and phase-3 replies, §3.3.2):
// those are shown to third parties, so MACs do not suffice. This module
// provides the real public-key backend; signing uses CRT for the usual
// ~4x speedup.
#pragma once

#include <optional>

#include "crypto/bigint.h"
#include "crypto/sha256.h"
#include "util/bytes.h"
#include "util/rng.h"

namespace bftbc::crypto {

struct RsaPublicKey {
  BigInt n;  // modulus
  BigInt e;  // public exponent (65537)

  std::size_t modulus_bytes() const { return (n.bit_length() + 7) / 8; }

  Bytes encode() const;
  static std::optional<RsaPublicKey> decode(BytesView b);
};

struct RsaPrivateKey {
  BigInt n, e, d;
  // CRT components.
  BigInt p, q, dp, dq, qinv;

  RsaPublicKey public_key() const { return {n, e}; }
};

struct RsaKeyPair {
  RsaPrivateKey priv;
  RsaPublicKey pub;
};

// Generate an RSA key with a modulus of `bits` bits (deterministic for a
// fixed rng seed). bits must be >= 512 so the PKCS#1 v1.5 SHA-256
// DigestInfo (51 bytes) fits.
RsaKeyPair rsa_generate(Rng& rng, std::size_t bits = 1024);

// Cached Montgomery reduction contexts for one key. Building the
// contexts costs a few divisions; every sign/verify after that skips
// the per-operation precompute entirely. Immutable once constructed, so
// one context can serve concurrent verifier threads.
class RsaContext {
 public:
  explicit RsaContext(const RsaPublicKey& pub);
  explicit RsaContext(const RsaPrivateKey& priv);

  const Montgomery& mont_n() const { return mont_n_; }
  // Only present when built from a private key.
  const Montgomery* mont_p() const { return mont_p_ ? &*mont_p_ : nullptr; }
  const Montgomery* mont_q() const { return mont_q_ ? &*mont_q_ : nullptr; }

 private:
  Montgomery mont_n_;
  std::optional<Montgomery> mont_p_;
  std::optional<Montgomery> mont_q_;
};

// Sign message (hashes internally with SHA-256).
Bytes rsa_sign(const RsaPrivateKey& key, BytesView message);
// Context-cached variant; ctx must be built from `key`.
Bytes rsa_sign(const RsaPrivateKey& key, const RsaContext& ctx,
               BytesView message);

// Verify a signature over message.
[[nodiscard]] bool rsa_verify(const RsaPublicKey& key, BytesView message,
                              BytesView signature);
// Context-cached variant; ctx must be built from `key` (or its pair).
[[nodiscard]] bool rsa_verify(const RsaPublicKey& key, const RsaContext& ctx,
                              BytesView message, BytesView signature);

}  // namespace bftbc::crypto
