#include "crypto/hmac.h"

namespace bftbc::crypto {

Digest hmac_sha256(BytesView key, BytesView message) {
  constexpr std::size_t kBlock = 64;

  // Keys longer than the block size are hashed first.
  Bytes k(kBlock, 0);
  if (key.size() > kBlock) {
    Digest kd = sha256(key);
    std::copy(kd.begin(), kd.end(), k.begin());
  } else {
    std::copy(key.begin(), key.end(), k.begin());
  }

  Bytes ipad(kBlock), opad(kBlock);
  for (std::size_t i = 0; i < kBlock; ++i) {
    ipad[i] = k[i] ^ 0x36;
    opad[i] = k[i] ^ 0x5c;
  }

  Sha256 inner;
  inner.update(ipad);
  inner.update(message);
  Digest inner_digest = inner.finish();

  Sha256 outer;
  outer.update(opad);
  outer.update(digest_view(inner_digest));
  return outer.finish();
}

bool hmac_verify(BytesView key, BytesView message, BytesView tag) {
  Digest expect = hmac_sha256(key, message);
  return constant_time_equal(digest_view(expect), tag);
}

}  // namespace bftbc::crypto
