// HMAC-SHA256 (RFC 2104).
//
// Implements the paper's cheap point-to-point authenticators (§3.3.2):
// statements that only the recipient must verify can use MACs over
// session keys instead of public-key signatures. Also the PRF behind the
// deterministic test signer.
#pragma once

#include "crypto/sha256.h"
#include "util/bytes.h"

namespace bftbc::crypto {

// tag = HMAC-SHA256(key, message)
Digest hmac_sha256(BytesView key, BytesView message);

// Verify in constant time.
[[nodiscard]] bool hmac_verify(BytesView key, BytesView message, BytesView tag);

}  // namespace bftbc::crypto
