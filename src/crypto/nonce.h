// Nonce generation.
//
// The paper assumes clients never reuse a nonce (§2). We make that
// structural: a nonce is 〈principal, counter, random〉 — unique across
// clients by the principal field and within a client by the counter; the
// random component keeps nonces unpredictable to other nodes.
#pragma once

#include <cstdint>

#include "util/codec.h"
#include "util/rng.h"

namespace bftbc::crypto {

struct Nonce {
  std::uint32_t principal = 0;
  std::uint64_t counter = 0;
  std::uint64_t random = 0;

  friend bool operator==(const Nonce& a, const Nonce& b) {
    return a.principal == b.principal && a.counter == b.counter &&
           a.random == b.random;
  }
  friend bool operator!=(const Nonce& a, const Nonce& b) { return !(a == b); }

  void encode(Writer& w) const {
    w.put_u32(principal);
    w.put_u64(counter);
    w.put_u64(random);
  }
  static Nonce decode(Reader& r) {
    Nonce n;
    n.principal = r.get_u32();
    n.counter = r.get_u64();
    n.random = r.get_u64();
    return n;
  }
};

class NonceGenerator {
 public:
  NonceGenerator(std::uint32_t principal, Rng rng)
      : principal_(principal), rng_(rng) {}

  Nonce next() {
    return Nonce{principal_, ++counter_, rng_.next_u64()};
  }

 private:
  std::uint32_t principal_;
  std::uint64_t counter_ = 0;
  Rng rng_;
};

}  // namespace bftbc::crypto
