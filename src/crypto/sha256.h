// SHA-256 (FIPS 180-4), implemented from scratch.
//
// This is the collision-resistant hash `h` the paper assumes: clients send
// h(val) in PREPARE requests, replicas bind prepare certificates to the
// digest, and the optimized protocol breaks timestamp ties by comparing
// digests numerically.
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.h"

namespace bftbc::crypto {

inline constexpr std::size_t kDigestSize = 32;

using Digest = std::array<std::uint8_t, kDigestSize>;

// Incremental hashing context.
class Sha256 {
 public:
  Sha256() { reset(); }

  void reset();
  void update(BytesView data);
  // Finalizes and returns the digest. The context must be reset() before
  // reuse.
  Digest finish();

 private:
  void process_block(const std::uint8_t* block);

  std::uint32_t h_[8];
  std::uint8_t buf_[64];
  std::size_t buf_len_;
  std::uint64_t total_len_;
};

// One-shot convenience.
Digest sha256(BytesView data);

// Digest helpers ------------------------------------------------------

inline BytesView digest_view(const Digest& d) {
  return BytesView(d.data(), d.size());
}

inline Bytes digest_bytes(const Digest& d) {
  return Bytes(d.begin(), d.end());
}

// Lexicographic (== numeric big-endian) comparison; the optimized
// protocol's deterministic tiebreak between two values prepared for the
// same timestamp (§6.1: "order ... by the numeric order on their hashes").
int compare_digests(const Digest& a, const Digest& b);

// Parse a 32-byte buffer into a Digest; returns false on size mismatch.
bool digest_from_bytes(BytesView b, Digest& out);

}  // namespace bftbc::crypto
