// Bounded LRU memo for public-key signature verification.
//
// Certificates are transferable proofs: the same 2f+1 signatures are
// re-checked by every replica that sees a PREPARE/WRITE, by every client
// that reads the certificate back in phase 1, and again on write-backs
// and retransmits. Each check is an RSA verification — the dominant cost
// of the protocol (§3.3.2). The result of verifying a fixed (principal,
// statement, signature) triple never changes, so it is safe to memoize.
//
// The cache key is (principal, SHA-256(statement), SHA-256(signature)):
// hashing the inputs keeps entries fixed-size and means a Byzantine node
// cannot blow up memory by shipping huge statements. Both positive and
// negative results are cached — a replayed garbage signature is rejected
// from cache just as cheaply as a valid one is accepted.
//
// Revocation hygiene: when a principal's key is revoked (the paper's
// "stop" event), all of its entries are purged so nothing keeps
// validating purely from cache; subsequent checks go back through the
// keystore, which decides what revocation means for old signatures.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

#include "crypto/sha256.h"
#include "util/bytes.h"

namespace bftbc::crypto {

using PrincipalId = std::uint32_t;

class VerifyCache {
 public:
  static constexpr std::size_t kDefaultCapacity = 64 * 1024;

  explicit VerifyCache(std::size_t capacity = kDefaultCapacity)
      : capacity_(capacity) {}

  struct Key {
    PrincipalId principal = 0;
    Digest statement{};  // SHA-256 of the signed bytes
    Digest signature{};  // SHA-256 of the signature bytes

    friend bool operator==(const Key& a, const Key& b) {
      return a.principal == b.principal && a.statement == b.statement &&
             a.signature == b.signature;
    }
  };

  static Key make_key(PrincipalId principal, BytesView statement,
                      BytesView signature) {
    return Key{principal, sha256(statement), sha256(signature)};
  }

  // Returns the memoized verdict and refreshes the entry's LRU position;
  // -1 if absent. (Not std::optional<bool> so a hot loop stays branchy-
  // cheap; callers compare against 0/1.)
  [[nodiscard]] int lookup(const Key& key);

  // Memoizes a verdict, evicting the least-recently-used entry when full.
  // A capacity of zero disables the cache entirely.
  void insert(const Key& key, bool valid);

  // Drops every entry for one principal (key revocation / "stop").
  void purge_principal(PrincipalId principal);

  void clear();

  // Shrinks/grows the bound; 0 disables and clears.
  void set_capacity(std::size_t capacity);

  std::size_t size() const { return lru_.size(); }
  std::size_t capacity() const { return capacity_; }

 private:
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      // The statement digest is already uniformly distributed; fold the
      // leading signature-digest bytes and the principal in on top.
      std::uint64_t h = 0;
      for (int i = 0; i < 8; ++i) {
        h = (h << 8) | k.statement[static_cast<std::size_t>(i)];
      }
      std::uint64_t s = 0;
      for (int i = 0; i < 8; ++i) {
        s = (s << 8) | k.signature[static_cast<std::size_t>(i)];
      }
      h ^= s * 0x9e3779b97f4a7c15ull;
      h ^= static_cast<std::uint64_t>(k.principal) * 0xc2b2ae3d27d4eb4full;
      return static_cast<std::size_t>(h);
    }
  };

  struct Entry {
    Key key;
    bool valid = false;
  };

  // LRU list, most-recent first; map points into the list.
  std::list<Entry> lru_;
  std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> index_;
  std::size_t capacity_;
};

}  // namespace bftbc::crypto
