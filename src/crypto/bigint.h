// Arbitrary-precision unsigned integers for RSA.
//
// Little-endian vector of 32-bit limbs, always normalized (no high zero
// limbs; zero is an empty vector). Division is Knuth's Algorithm D;
// modular exponentiation is left-to-right square-and-multiply. The sizes
// involved (512–2048 bits) keep schoolbook multiplication competitive.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/bytes.h"
#include "util/rng.h"

namespace bftbc::crypto {

class BigInt {
 public:
  BigInt() = default;
  explicit BigInt(std::uint64_t v);

  // Big-endian byte import/export (the natural wire format).
  static BigInt from_bytes(BytesView be);
  Bytes to_bytes() const;
  // Export padded/truncated to exactly n bytes big-endian.
  Bytes to_bytes_padded(std::size_t n) const;

  static BigInt from_hex(std::string_view hex);
  std::string to_hex() const;

  // Uniform random integer with exactly `bits` bits (top bit set).
  static BigInt random_with_bits(Rng& rng, std::size_t bits);
  // Uniform random integer in [0, bound).
  static BigInt random_below(Rng& rng, const BigInt& bound);

  bool is_zero() const { return limbs_.empty(); }
  bool is_odd() const { return !limbs_.empty() && (limbs_[0] & 1); }
  bool is_one() const { return limbs_.size() == 1 && limbs_[0] == 1; }
  std::size_t bit_length() const;
  bool bit(std::size_t i) const;
  std::uint64_t to_u64() const;  // low 64 bits

  // Comparison: -1, 0, +1.
  static int compare(const BigInt& a, const BigInt& b);
  friend bool operator==(const BigInt& a, const BigInt& b) {
    return compare(a, b) == 0;
  }
  friend bool operator!=(const BigInt& a, const BigInt& b) {
    return compare(a, b) != 0;
  }
  friend bool operator<(const BigInt& a, const BigInt& b) {
    return compare(a, b) < 0;
  }
  friend bool operator<=(const BigInt& a, const BigInt& b) {
    return compare(a, b) <= 0;
  }
  friend bool operator>(const BigInt& a, const BigInt& b) {
    return compare(a, b) > 0;
  }
  friend bool operator>=(const BigInt& a, const BigInt& b) {
    return compare(a, b) >= 0;
  }

  friend BigInt operator+(const BigInt& a, const BigInt& b);
  // Requires a >= b (unsigned arithmetic).
  friend BigInt operator-(const BigInt& a, const BigInt& b);
  friend BigInt operator*(const BigInt& a, const BigInt& b);

  BigInt shifted_left(std::size_t bits) const;
  BigInt shifted_right(std::size_t bits) const;

  // quotient/remainder; divisor must be non-zero.
  struct DivResult;
  static DivResult divmod(const BigInt& a, const BigInt& b);
  friend BigInt operator/(const BigInt& a, const BigInt& b);
  friend BigInt operator%(const BigInt& a, const BigInt& b);

  // (base ^ exp) mod m ; m must be > 1.
  static BigInt mod_exp(const BigInt& base, const BigInt& exp, const BigInt& m);

  static BigInt gcd(BigInt a, BigInt b);
  // Multiplicative inverse of a mod m, if gcd(a, m) == 1; returns zero
  // BigInt otherwise.
  static BigInt mod_inverse(const BigInt& a, const BigInt& m);

 private:
  void normalize();
  static BigInt from_limbs(std::vector<std::uint32_t> limbs);

  std::vector<std::uint32_t> limbs_;
};

struct BigInt::DivResult {
  BigInt quotient;
  BigInt remainder;
};

inline BigInt operator/(const BigInt& a, const BigInt& b) {
  return BigInt::divmod(a, b).quotient;
}
inline BigInt operator%(const BigInt& a, const BigInt& b) {
  return BigInt::divmod(a, b).remainder;
}

}  // namespace bftbc::crypto
