// Arbitrary-precision unsigned integers for RSA.
//
// Little-endian vector of 32-bit limbs, always normalized (no high zero
// limbs; zero is an empty vector). Division is Knuth's Algorithm D.
// Modular exponentiation for odd moduli (every RSA modulus and prime)
// runs over a Montgomery domain — CIOS reduction plus 4-bit windowed
// exponentiation — with the reduction constants held in a reusable
// `Montgomery` context so per-key state can be cached. The legacy
// divmod-per-step ladder survives as `mod_exp_schoolbook` for even
// moduli and as the differential-fuzz reference.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/bytes.h"
#include "util/rng.h"

namespace bftbc::crypto {

class BigInt {
 public:
  BigInt() = default;
  explicit BigInt(std::uint64_t v);

  // Big-endian byte import/export (the natural wire format).
  static BigInt from_bytes(BytesView be);
  Bytes to_bytes() const;
  // Export padded/truncated to exactly n bytes big-endian.
  Bytes to_bytes_padded(std::size_t n) const;

  static BigInt from_hex(std::string_view hex);
  std::string to_hex() const;

  // Uniform random integer with exactly `bits` bits (top bit set).
  static BigInt random_with_bits(Rng& rng, std::size_t bits);
  // Uniform random integer in [0, bound).
  static BigInt random_below(Rng& rng, const BigInt& bound);

  bool is_zero() const { return limbs_.empty(); }
  bool is_odd() const { return !limbs_.empty() && (limbs_[0] & 1); }
  bool is_one() const { return limbs_.size() == 1 && limbs_[0] == 1; }
  std::size_t bit_length() const;
  bool bit(std::size_t i) const;
  std::uint64_t to_u64() const;  // low 64 bits

  // Comparison: -1, 0, +1.
  static int compare(const BigInt& a, const BigInt& b);
  friend bool operator==(const BigInt& a, const BigInt& b) {
    return compare(a, b) == 0;
  }
  friend bool operator!=(const BigInt& a, const BigInt& b) {
    return compare(a, b) != 0;
  }
  friend bool operator<(const BigInt& a, const BigInt& b) {
    return compare(a, b) < 0;
  }
  friend bool operator<=(const BigInt& a, const BigInt& b) {
    return compare(a, b) <= 0;
  }
  friend bool operator>(const BigInt& a, const BigInt& b) {
    return compare(a, b) > 0;
  }
  friend bool operator>=(const BigInt& a, const BigInt& b) {
    return compare(a, b) >= 0;
  }

  friend BigInt operator+(const BigInt& a, const BigInt& b);
  // Requires a >= b (unsigned arithmetic).
  friend BigInt operator-(const BigInt& a, const BigInt& b);
  friend BigInt operator*(const BigInt& a, const BigInt& b);

  BigInt shifted_left(std::size_t bits) const;
  BigInt shifted_right(std::size_t bits) const;

  // quotient/remainder; divisor must be non-zero.
  struct DivResult;
  static DivResult divmod(const BigInt& a, const BigInt& b);
  friend BigInt operator/(const BigInt& a, const BigInt& b);
  friend BigInt operator%(const BigInt& a, const BigInt& b);

  // (base ^ exp) mod m ; m must be > 1. Dispatches to a Montgomery
  // ladder when m is odd, falling back to the schoolbook ladder for
  // even moduli.
  static BigInt mod_exp(const BigInt& base, const BigInt& exp, const BigInt& m);
  // Square-and-multiply with a full division per step. Kept public as
  // the reference implementation the nightly differential fuzz checks
  // Montgomery against; also the only path for even moduli.
  static BigInt mod_exp_schoolbook(const BigInt& base, const BigInt& exp,
                                   const BigInt& m);

  static BigInt gcd(BigInt a, BigInt b);
  // Multiplicative inverse of a mod m, if gcd(a, m) == 1; returns zero
  // BigInt otherwise.
  static BigInt mod_inverse(const BigInt& a, const BigInt& m);

 private:
  friend class Montgomery;

  void normalize();
  static BigInt from_limbs(std::vector<std::uint32_t> limbs);

  std::vector<std::uint32_t> limbs_;
};

// Reusable reduction context for a fixed odd modulus m > 1.
//
// Construction computes the constants (R^2 mod m and -m^-1 mod 2^32);
// after that, mod_exp does one Knuth division total (folding the base
// into the domain) instead of two per exponent bit. RSA callers cache
// one context per key component (n, p, q). The context is immutable
// after construction and safe to share across threads.
class Montgomery {
 public:
  explicit Montgomery(const BigInt& m);

  const BigInt& modulus() const { return m_; }

  // (base ^ exp) mod m via 4-bit fixed-window exponentiation.
  BigInt mod_exp(const BigInt& base, const BigInt& exp) const;

  // (a * b * R^-1) mod m for a, b already in the Montgomery domain.
  // Exposed for the differential fuzz; protocol code uses mod_exp.
  BigInt mont_mul(const BigInt& a, const BigInt& b) const;
  BigInt to_mont(const BigInt& a) const;    // a*R mod m
  BigInt from_mont(const BigInt& a) const;  // a*R^-1 mod m

 private:
  void mont_mul_into(const std::uint32_t* a, std::size_t a_size,
                     const std::uint32_t* b, std::size_t b_size,
                     std::vector<std::uint32_t>& out) const;

  BigInt m_;
  std::size_t n_ = 0;       // limb count of m_
  std::uint32_t n0_ = 0;    // -m^-1 mod 2^32
  BigInt rr_;               // R^2 mod m, R = 2^(32*n_)
  BigInt one_;              // R mod m (1 in the Montgomery domain)
};

struct BigInt::DivResult {
  BigInt quotient;
  BigInt remainder;
};

inline BigInt operator/(const BigInt& a, const BigInt& b) {
  return BigInt::divmod(a, b).quotient;
}
inline BigInt operator%(const BigInt& a, const BigInt& b) {
  return BigInt::divmod(a, b).remainder;
}

}  // namespace bftbc::crypto
