// Probabilistic primality testing and prime generation for RSA keygen.
#pragma once

#include "crypto/bigint.h"
#include "util/rng.h"

namespace bftbc::crypto {

// Miller–Rabin with `rounds` random bases (error probability ≤ 4^-rounds),
// preceded by trial division by small primes.
bool is_probable_prime(const BigInt& n, Rng& rng, int rounds = 20);

// Random prime with exactly `bits` bits. Draws candidates from rng; for a
// fixed seed the result is deterministic.
BigInt generate_prime(Rng& rng, std::size_t bits, int rounds = 20);

}  // namespace bftbc::crypto
