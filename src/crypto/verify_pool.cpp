#include "crypto/verify_pool.h"

namespace bftbc::crypto {

VerifyPool::VerifyPool(std::size_t threads) {
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

VerifyPool::~VerifyPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : workers_) t.join();
}

void VerifyPool::drain_job(std::unique_lock<std::mutex>& lk) {
  const std::uint64_t gen = generation_;
  while (next_ < total_) {
    const std::size_t idx = next_++;
    const auto* fn = fn_;
    lk.unlock();
    (*fn)(idx);
    lk.lock();
    // A new job cannot start until this one fully completes (the caller
    // holds caller_mu_ and waits on done_cv_), so gen still matches.
    (void)gen;
    if (++completed_ == total_) done_cv_.notify_all();
  }
}

void VerifyPool::worker_loop() {
  std::unique_lock<std::mutex> lk(mu_);
  std::uint64_t seen = 0;
  for (;;) {
    work_cv_.wait(lk, [&] {
      return shutdown_ || (generation_ != seen && next_ < total_);
    });
    if (shutdown_) return;
    seen = generation_;
    drain_job(lk);
  }
}

void VerifyPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::lock_guard<std::mutex> caller(caller_mu_);
  std::unique_lock<std::mutex> lk(mu_);
  fn_ = &fn;
  next_ = 0;
  completed_ = 0;
  total_ = n;
  ++generation_;
  work_cv_.notify_all();
  // The caller helps drain, then waits for the stragglers workers are
  // still running.
  drain_job(lk);
  done_cv_.wait(lk, [&] { return completed_ == total_; });
  fn_ = nullptr;
  total_ = 0;
}

}  // namespace bftbc::crypto
