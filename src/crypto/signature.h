// Signing and verification abstraction.
//
// The paper's model: any node can sign messages with its own key; no node
// can produce 〈m〉σn without n's private key; signatures can be checked by
// anyone (they are proofs shown to third parties inside certificates).
//
// Two backends:
//  - kHmacSim : a simulation-grade scheme. A trusted Keystore holds one
//    secret per principal; sign = HMAC(secret_p, principal || msg). This
//    is unforgeable *within the simulation* because code only ever
//    receives a Signer handle for its own principal — exactly the paper's
//    assumption — while being ~1000x faster than RSA, which keeps big
//    adversarial sweeps cheap.
//  - kRsa     : real RSA PKCS#1 v1.5 / SHA-256 (self-implemented), for the
//    authentication-cost experiments (§3.3.2) and end-to-end realism.
//
// Keystore::revoke models the paper's "stop" event: an administrator
// removes the bad client's key, after which no NEW signatures by that
// principal can be created (old ones still verify — replays remain
// possible, as §4.1.1 requires).
//
// verify_cached memoizes verification verdicts in a bounded LRU (see
// verify_cache.h): certificates are transferable proofs whose 2f+1
// signatures get re-checked at every hop, so the protocol routes all
// certificate validation through this path. Revoking a principal purges
// its cache entries, so post-stop checks always re-enter the keystore.
// Threading contract: registration (register_principal) and scheme setup
// are single-threaded setup-time operations. After setup, verify /
// verify_cached / sign are safe to call from multiple threads: the
// principal table is read-only, and the shared mutable state — the
// verification cache and the op counters — is guarded by verify_mu_
// (see BFTBC_GUARDED_BY annotations). The underlying cryptographic check
// runs outside the lock, so concurrent verifies of distinct statements
// do not serialize on the RSA/HMAC work.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>

#include "crypto/rsa.h"
#include "crypto/verify_cache.h"
#include "util/bytes.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace bftbc::crypto {

class VerifyPool;

using PrincipalId = std::uint32_t;

enum class SignatureScheme { kHmacSim, kRsa };

class Keystore;

// A signing capability bound to one principal. Handed to a node at
// creation; honest and Byzantine nodes alike can only sign as themselves.
class Signer {
 public:
  Signer() = default;

  PrincipalId principal() const { return principal_; }
  bool valid() const { return keystore_ != nullptr; }

  // Produces 〈msg〉σ_principal. Returns UNAVAILABLE after revocation
  // (the "stop" event) — a stopped client cannot mint new statements.
  [[nodiscard]] Result<Bytes> sign(BytesView msg) const;

  // Produces the point-to-point MAC tag μ_{principal,peer}(msg). Like
  // sign(), revoked principals get UNAVAILABLE — a stopped client
  // cannot authenticate new requests either.
  [[nodiscard]] Result<Bytes> mac(PrincipalId peer, BytesView msg) const;

  // Concatenated per-peer MAC tags (an "authenticator", PBFT-style):
  // peers.size() * kMacSize bytes, tag i authenticating msg toward
  // peers[i]. Receivers check only their own slice.
  [[nodiscard]] Result<Bytes> mac_authenticator(
      const std::vector<PrincipalId>& peers, BytesView msg) const;

 private:
  friend class Keystore;
  Signer(Keystore* ks, PrincipalId p) : keystore_(ks), principal_(p) {}

  Keystore* keystore_ = nullptr;
  PrincipalId principal_ = 0;
};

class Keystore {
 public:
  explicit Keystore(SignatureScheme scheme = SignatureScheme::kHmacSim,
                    std::uint64_t seed = 1, std::size_t rsa_bits = 1024);

  SignatureScheme scheme() const { return scheme_; }

  // Registers a principal (idempotent) and returns its signer handle.
  Signer register_principal(PrincipalId p);

  bool is_registered(PrincipalId p) const;

  // Public verification — usable by any node, any principal. Always
  // performs the underlying cryptographic check (counter: "verify" /
  // "sig_verify_calls").
  [[nodiscard]] bool verify(PrincipalId signer, BytesView msg,
                            BytesView sig) const;

  // Memoized verification: consults the LRU cache keyed on
  // (principal, sha256(msg), sha256(sig)) and only falls back to the
  // real cryptographic check on a miss. Semantically identical to
  // verify() — both positive and negative verdicts are cached, and a
  // revocation purges the principal's entries. Counters:
  // "sig_cache_hit" / "sig_cache_miss".
  [[nodiscard]] bool verify_cached(PrincipalId signer, BytesView msg,
                                   BytesView sig) const;

  // One signature check inside a batch; `valid` is the output slot.
  struct VerifyItem {
    PrincipalId principal = 0;
    Bytes statement;
    Bytes sig;
    bool valid = false;
  };

  // Batched memoized verification: resolves every item's verdict with
  // one cache pass. Items are grouped by (principal, statement,
  // signature) so each distinct triple costs one lookup and at most one
  // real cryptographic check regardless of how often the batch repeats
  // it; duplicates and cache hits count as "sig_cache_hit", distinct
  // misses as "sig_cache_miss" (semantics match per-item verify_cached).
  // Returns the number of real cryptographic checks performed.
  [[nodiscard]] std::size_t verify_batch(std::vector<VerifyItem>& items) const;

  // Optional worker pool for verify_batch's cryptographic pass. The
  // pool is borrowed, not owned, and must outlive the keystore's last
  // verification. nullptr (the default) keeps the pass inline.
  void set_verify_pool(VerifyPool* pool) { verify_pool_ = pool; }

  // --- Point-to-point MAC authentication (paper §3.3.2) ---
  //
  // Every pair of principals shares a symmetric session key derived
  // from the keystore seed: key(a,b) = HMAC(master, min(a,b)||max(a,b)).
  // Tags additionally bind the direction (sender||receiver||msg), so a
  // reply MAC can never be replayed as a request MAC on the same pair.
  // MACs authenticate only to the receiver — they are NOT transferable
  // proofs — so the protocol uses them strictly for point-to-point
  // replies/requests and keeps signatures for certificate statements.
  static constexpr std::size_t kMacSize = kDigestSize;

  // Checks the tag `sender` computed toward `receiver` over msg. Both
  // principals must be registered. Counter: "mac_verify". Revoked
  // senders still check (replay of old messages is allowed, same as
  // signatures; the stop event only blocks NEW tags via Signer::mac).
  [[nodiscard]] bool mac_check(PrincipalId sender, PrincipalId receiver,
                               BytesView msg, BytesView tag) const;

  // Bounds the verification cache; 0 disables memoization (every
  // verify_cached call then performs the real check).
  void set_verify_cache_capacity(std::size_t entries);
  // Unsynchronized inspection handle — only valid while no other thread
  // is concurrently verifying (tests / post-run reporting).
  const VerifyCache& verify_cache() const BFTBC_NO_THREAD_SAFETY_ANALYSIS {
    return verify_cache_;
  }

  // The "stop"/administrator action: principal can no longer create new
  // signatures. Existing signatures continue to verify (replay of old
  // messages is allowed by the model). Cached verdicts for the principal
  // are dropped so nothing keeps validating purely from memoization.
  void revoke(PrincipalId p);
  bool is_revoked(PrincipalId p) const;

  // Instrumentation: counts of sign/verify operations, for the message
  // and crypto-cost experiments. Snapshot-style reads: take them after
  // concurrent verification has quiesced.
  const Counters& counters() const BFTBC_NO_THREAD_SAFETY_ANALYSIS {
    return counters_;
  }
  void reset_counters() {
    std::lock_guard<std::mutex> lock(verify_mu_);
    counters_.reset();
  }

  std::size_t signature_size() const;

 private:
  friend class Signer;
  Result<Bytes> sign_internal(PrincipalId p, BytesView msg);
  Result<Bytes> mac_internal(PrincipalId sender, PrincipalId receiver,
                             BytesView msg) const;
  // Symmetric session key for the unordered pair {a, b}.
  Bytes pair_key(PrincipalId a, PrincipalId b) const;

  struct PrincipalEntry {
    Bytes hmac_secret;                       // kHmacSim
    std::optional<RsaKeyPair> rsa;           // kRsa
    // Montgomery contexts for the RSA key, built once at registration
    // (setup-time) so the hot sign/verify paths skip the precompute.
    std::shared_ptr<const RsaContext> rsa_ctx;
    bool revoked = false;
  };

  SignatureScheme scheme_;
  std::size_t rsa_bits_;
  Rng rng_;
  // Master secret for pair-key derivation; a function of the seed only
  // (independent of rng_'s stream, so enabling MACs does not perturb
  // the deterministic key generation sequence).
  Bytes p2p_master_;
  std::map<PrincipalId, PrincipalEntry> principals_;
  VerifyPool* verify_pool_ = nullptr;
  // Guards the two members every thread mutates on the verify path. The
  // principal table above is intentionally NOT guarded: it is read-only
  // after setup (register_principal is setup-time; revoke only flips a
  // per-entry flag and purges the cache under the lock).
  mutable std::mutex verify_mu_;
  mutable Counters counters_ BFTBC_GUARDED_BY(verify_mu_);
  mutable VerifyCache verify_cache_ BFTBC_GUARDED_BY(verify_mu_);
};

}  // namespace bftbc::crypto
