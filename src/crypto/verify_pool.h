// A small blocking worker pool for batch signature verification.
//
// The protocol thread hands `parallel_for` a batch of independent
// verification jobs; persistent workers plus the caller itself drain
// the index space, and the call returns only when every index has run.
// Blocking semantics keep the replica's batch-verify path synchronous —
// results are complete before the handlers that consume them run — so
// no protocol-visible ordering changes, only wall-clock.
//
// Thread-safety contract: `fn` must be safe to invoke concurrently for
// distinct indices (the keystore's batch path writes verdicts to
// distinct slots and touches no shared mutable state in pass 2).
// Concurrent parallel_for callers are serialized by caller_mu_.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/thread_annotations.h"

namespace bftbc::crypto {

class VerifyPool {
 public:
  // Spawns `threads` persistent workers. 0 means "run inline on the
  // caller" — a pool-shaped no-op so call sites need no branching.
  explicit VerifyPool(std::size_t threads);
  ~VerifyPool();

  VerifyPool(const VerifyPool&) = delete;
  VerifyPool& operator=(const VerifyPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  // Runs fn(0..n-1), each index exactly once, returning after all have
  // completed. The caller participates in draining the batch, so the
  // pool makes progress even with zero workers available.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();
  // Claims and runs indices until the current job is drained. Returns
  // with mu_ held (re-acquired after each unlocked fn call).
  void drain_job(std::unique_lock<std::mutex>& lk) BFTBC_REQUIRES(mu_);

  // Serializes concurrent parallel_for callers; workers never take it.
  std::mutex caller_mu_ BFTBC_ACQUIRED_BEFORE(mu_);

  std::mutex mu_;
  std::condition_variable work_cv_;  // workers wait: new job or shutdown
  std::condition_variable done_cv_;  // caller waits: completed_ == total_
  std::uint64_t generation_ BFTBC_GUARDED_BY(mu_) = 0;
  const std::function<void(std::size_t)>* fn_ BFTBC_GUARDED_BY(mu_) = nullptr;
  std::size_t next_ BFTBC_GUARDED_BY(mu_) = 0;
  std::size_t total_ BFTBC_GUARDED_BY(mu_) = 0;
  std::size_t completed_ BFTBC_GUARDED_BY(mu_) = 0;
  bool shutdown_ BFTBC_GUARDED_BY(mu_) = false;

  std::vector<std::thread> workers_;
};

}  // namespace bftbc::crypto
