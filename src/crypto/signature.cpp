#include "crypto/signature.h"

#include <algorithm>
#include <numeric>

#include "crypto/hmac.h"
#include "crypto/verify_pool.h"
#include "util/codec.h"

namespace bftbc::crypto {

namespace {
void append_principal(Bytes& out, PrincipalId p) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::uint8_t>(p >> (8 * i)));
}
}  // namespace

Result<Bytes> Signer::sign(BytesView msg) const {
  if (keystore_ == nullptr)
    return unavailable("signer not bound to a keystore");
  return keystore_->sign_internal(principal_, msg);
}

Result<Bytes> Signer::mac(PrincipalId peer, BytesView msg) const {
  if (keystore_ == nullptr)
    return unavailable("signer not bound to a keystore");
  return keystore_->mac_internal(principal_, peer, msg);
}

Result<Bytes> Signer::mac_authenticator(const std::vector<PrincipalId>& peers,
                                        BytesView msg) const {
  if (keystore_ == nullptr)
    return unavailable("signer not bound to a keystore");
  Bytes out;
  out.reserve(peers.size() * Keystore::kMacSize);
  for (PrincipalId peer : peers) {
    auto tag = keystore_->mac_internal(principal_, peer, msg);
    if (!tag.is_ok()) return tag;
    append(out, std::move(tag).take());
  }
  return out;
}

Keystore::Keystore(SignatureScheme scheme, std::uint64_t seed,
                   std::size_t rsa_bits)
    : scheme_(scheme), rsa_bits_(rsa_bits), rng_(seed) {
  // Pair-key master secret: a function of the seed alone, NOT of rng_'s
  // stream — same-seeded keystores agree on every session key, and the
  // deterministic principal-key sequence is unchanged by MAC use.
  Bytes seed_input = to_bytes("bftbc-p2p-master-v1:");
  for (int i = 0; i < 8; ++i)
    seed_input.push_back(static_cast<std::uint8_t>(seed >> (8 * i)));
  p2p_master_ = digest_bytes(sha256(seed_input));
}

Signer Keystore::register_principal(PrincipalId p) {
  auto [it, inserted] = principals_.try_emplace(p);
  if (inserted) {
    if (scheme_ == SignatureScheme::kHmacSim) {
      it->second.hmac_secret = rng_.bytes(32);
    } else {
      it->second.rsa = rsa_generate(rng_, rsa_bits_);
      it->second.rsa_ctx = std::make_shared<RsaContext>(it->second.rsa->priv);
    }
  }
  return Signer(this, p);
}

bool Keystore::is_registered(PrincipalId p) const {
  return principals_.count(p) != 0;
}

namespace {
// Domain-separate the signed bytes by principal so a signature by p over
// m can never validate as a signature by p' over m.
Bytes bind_principal(PrincipalId p, BytesView msg) {
  Bytes bound;
  bound.reserve(msg.size() + 4);
  for (int i = 0; i < 4; ++i)
    bound.push_back(static_cast<std::uint8_t>(p >> (8 * i)));
  append(bound, msg);
  return bound;
}
}  // namespace

Result<Bytes> Keystore::sign_internal(PrincipalId p, BytesView msg) {
  auto it = principals_.find(p);
  if (it == principals_.end()) return not_found("unknown principal");
  if (it->second.revoked)
    return unavailable("principal revoked (stopped)");
  {
    std::lock_guard<std::mutex> lock(verify_mu_);
    counters_.inc("sign");
  }
  const Bytes bound = bind_principal(p, msg);
  if (scheme_ == SignatureScheme::kHmacSim) {
    Digest tag = hmac_sha256(it->second.hmac_secret, bound);
    return digest_bytes(tag);
  }
  return rsa_sign(it->second.rsa->priv, *it->second.rsa_ctx, bound);
}

Bytes Keystore::pair_key(PrincipalId a, PrincipalId b) const {
  Bytes pair;
  pair.reserve(8);
  append_principal(pair, std::min(a, b));
  append_principal(pair, std::max(a, b));
  return digest_bytes(hmac_sha256(p2p_master_, pair));
}

Result<Bytes> Keystore::mac_internal(PrincipalId sender, PrincipalId receiver,
                                     BytesView msg) const {
  auto it = principals_.find(sender);
  if (it == principals_.end()) return not_found("unknown principal");
  if (it->second.revoked)
    return unavailable("principal revoked (stopped)");
  if (principals_.count(receiver) == 0)
    return not_found("unknown MAC peer");
  {
    std::lock_guard<std::mutex> lock(verify_mu_);
    counters_.inc("mac_sign");
  }
  Bytes bound;
  bound.reserve(msg.size() + 8);
  append_principal(bound, sender);
  append_principal(bound, receiver);
  append(bound, msg);
  return digest_bytes(hmac_sha256(pair_key(sender, receiver), bound));
}

bool Keystore::mac_check(PrincipalId sender, PrincipalId receiver,
                         BytesView msg, BytesView tag) const {
  if (principals_.count(sender) == 0 || principals_.count(receiver) == 0)
    return false;
  {
    std::lock_guard<std::mutex> lock(verify_mu_);
    counters_.inc("mac_verify");
  }
  Bytes bound;
  bound.reserve(msg.size() + 8);
  append_principal(bound, sender);
  append_principal(bound, receiver);
  append(bound, msg);
  return hmac_verify(pair_key(sender, receiver), bound, tag);
}

bool Keystore::verify(PrincipalId signer, BytesView msg, BytesView sig) const {
  auto it = principals_.find(signer);
  if (it == principals_.end()) return false;
  {
    std::lock_guard<std::mutex> lock(verify_mu_);
    counters_.inc("verify");
    counters_.inc("sig_verify_calls");
  }
  // The cryptographic check itself runs unlocked: the key material is
  // immutable after registration, so concurrent verifies parallelize.
  const Bytes bound = bind_principal(signer, msg);
  if (scheme_ == SignatureScheme::kHmacSim) {
    return hmac_verify(it->second.hmac_secret, bound, sig);
  }
  return rsa_verify(it->second.rsa->pub, *it->second.rsa_ctx, bound, sig);
}

bool Keystore::verify_cached(PrincipalId signer, BytesView msg,
                             BytesView sig) const {
  // Unknown principals are rejected without caching: registering the
  // principal later must not be shadowed by a stale negative verdict.
  if (principals_.count(signer) == 0) return false;
  const VerifyCache::Key key = VerifyCache::make_key(signer, msg, sig);
  {
    std::lock_guard<std::mutex> lock(verify_mu_);
    const int memo = verify_cache_.lookup(key);
    if (memo >= 0) {
      counters_.inc("sig_cache_hit");
      return memo == 1;
    }
    counters_.inc("sig_cache_miss");
  }
  // Miss: run the real check outside the lock. Two threads racing on the
  // same key both verify and insert the same verdict — wasted work at
  // worst, never a wrong answer.
  const bool valid = verify(signer, msg, sig);
  std::lock_guard<std::mutex> lock(verify_mu_);
  verify_cache_.insert(key, valid);
  return valid;
}

std::size_t Keystore::verify_batch(std::vector<VerifyItem>& items) const {
  if (items.empty()) return 0;

  // Hash every key outside the lock, then order item indices so that
  // identical (principal, statement, signature) triples sit adjacent:
  // each distinct triple costs one cache lookup and at most one real
  // cryptographic check, no matter how often the batch repeats it. The
  // grouping also keeps same-principal lookups together (cache-aware:
  // their entries share hot index/LRU neighborhoods).
  std::vector<VerifyCache::Key> keys;
  keys.reserve(items.size());
  for (const VerifyItem& item : items) {
    keys.push_back(
        VerifyCache::make_key(item.principal, item.statement, item.sig));
  }
  std::vector<std::size_t> order(items.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&keys](std::size_t a, std::size_t b) {
              if (keys[a].principal != keys[b].principal)
                return keys[a].principal < keys[b].principal;
              if (keys[a].statement != keys[b].statement)
                return keys[a].statement < keys[b].statement;
              return keys[a].signature < keys[b].signature;
            });

  // Group leaders: the first index of every run of identical keys.
  std::vector<std::size_t> leaders;
  leaders.reserve(order.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (i == 0 || !(keys[order[i]] == keys[order[i - 1]])) {
      leaders.push_back(i);
    }
  }

  // Pass 1 (one lock acquisition): resolve every distinct triple against
  // the cache. -1 marks a miss to be computed.
  std::vector<int> verdicts(leaders.size(), -1);
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  {
    std::lock_guard<std::mutex> lock(verify_mu_);
    for (std::size_t g = 0; g < leaders.size(); ++g) {
      verdicts[g] = verify_cache_.lookup(keys[order[leaders[g]]]);
      if (verdicts[g] >= 0) ++hits;
    }
  }

  // Pass 2 (no lock): real cryptography for the misses. Unknown
  // principals are rejected without caching or counting, exactly like
  // verify()/verify_cached(). The sequential filter loop builds a work
  // list first; the cryptographic checks then run either inline or on
  // the verify pool. Pool safety: each job touches only its own group's
  // verdict slot (distinct ints) and immutable key material, so jobs
  // share no mutable state.
  std::vector<char> cacheable(leaders.size(), 0);
  struct CryptoJob {
    std::size_t group;
    const PrincipalEntry* entry;
  };
  std::vector<CryptoJob> work;
  for (std::size_t g = 0; g < leaders.size(); ++g) {
    if (verdicts[g] >= 0) continue;
    const VerifyItem& item = items[order[leaders[g]]];
    auto it = principals_.find(item.principal);
    if (it == principals_.end()) {
      verdicts[g] = 0;
      continue;
    }
    cacheable[g] = 1;
    work.push_back({g, &it->second});
  }
  misses += work.size();
  const std::size_t crypto_checks = work.size();

  const auto run_one = [&](std::size_t w) {
    const CryptoJob& job = work[w];
    const VerifyItem& item = items[order[leaders[job.group]]];
    const Bytes bound = bind_principal(item.principal, item.statement);
    const bool valid =
        scheme_ == SignatureScheme::kHmacSim
            ? hmac_verify(job.entry->hmac_secret, bound, item.sig)
            : rsa_verify(job.entry->rsa->pub, *job.entry->rsa_ctx, bound,
                         item.sig);
    verdicts[job.group] = valid ? 1 : 0;
  };
  if (verify_pool_ != nullptr && work.size() >= 2) {
    verify_pool_->parallel_for(work.size(), run_one);
  } else {
    for (std::size_t w = 0; w < work.size(); ++w) run_one(w);
  }

  // Pass 3 (one lock acquisition): memoize fresh verdicts and account.
  // Duplicates beyond each group leader are served from the batch's own
  // resolution, which is a hit for accounting purposes.
  {
    std::lock_guard<std::mutex> lock(verify_mu_);
    for (std::size_t g = 0; g < leaders.size(); ++g) {
      if (cacheable[g]) {
        verify_cache_.insert(keys[order[leaders[g]]], verdicts[g] == 1);
      }
    }
    const std::uint64_t dup_hits = items.size() - leaders.size();
    counters_.inc("sig_cache_hit", hits + dup_hits);
    counters_.inc("sig_cache_miss", misses);
    counters_.inc("verify", crypto_checks);
    counters_.inc("sig_verify_calls", crypto_checks);
  }

  // Scatter verdicts back to every item in the group.
  for (std::size_t g = 0; g < leaders.size(); ++g) {
    const std::size_t end =
        g + 1 < leaders.size() ? leaders[g + 1] : order.size();
    for (std::size_t i = leaders[g]; i < end; ++i) {
      items[order[i]].valid = verdicts[g] == 1;
    }
  }
  return crypto_checks;
}

void Keystore::set_verify_cache_capacity(std::size_t entries) {
  std::lock_guard<std::mutex> lock(verify_mu_);
  verify_cache_.set_capacity(entries);
}

void Keystore::revoke(PrincipalId p) {
  auto it = principals_.find(p);
  if (it != principals_.end()) it->second.revoked = true;
  // Mandatory cache hygiene: a stopped principal's statements must not
  // keep validating straight from memoization.
  std::lock_guard<std::mutex> lock(verify_mu_);
  verify_cache_.purge_principal(p);
}

bool Keystore::is_revoked(PrincipalId p) const {
  auto it = principals_.find(p);
  return it != principals_.end() && it->second.revoked;
}

std::size_t Keystore::signature_size() const {
  if (scheme_ == SignatureScheme::kHmacSim) return kDigestSize;
  return (rsa_bits_ + 7) / 8;
}

}  // namespace bftbc::crypto
