#include "crypto/signature.h"

#include "crypto/hmac.h"
#include "util/codec.h"

namespace bftbc::crypto {

Result<Bytes> Signer::sign(BytesView msg) const {
  if (keystore_ == nullptr)
    return unavailable("signer not bound to a keystore");
  return keystore_->sign_internal(principal_, msg);
}

Keystore::Keystore(SignatureScheme scheme, std::uint64_t seed,
                   std::size_t rsa_bits)
    : scheme_(scheme), rsa_bits_(rsa_bits), rng_(seed) {}

Signer Keystore::register_principal(PrincipalId p) {
  auto [it, inserted] = principals_.try_emplace(p);
  if (inserted) {
    if (scheme_ == SignatureScheme::kHmacSim) {
      it->second.hmac_secret = rng_.bytes(32);
    } else {
      it->second.rsa = rsa_generate(rng_, rsa_bits_);
    }
  }
  return Signer(this, p);
}

bool Keystore::is_registered(PrincipalId p) const {
  return principals_.count(p) != 0;
}

namespace {
// Domain-separate the signed bytes by principal so a signature by p over
// m can never validate as a signature by p' over m.
Bytes bind_principal(PrincipalId p, BytesView msg) {
  Bytes bound;
  bound.reserve(msg.size() + 4);
  for (int i = 0; i < 4; ++i)
    bound.push_back(static_cast<std::uint8_t>(p >> (8 * i)));
  append(bound, msg);
  return bound;
}
}  // namespace

Result<Bytes> Keystore::sign_internal(PrincipalId p, BytesView msg) {
  auto it = principals_.find(p);
  if (it == principals_.end()) return not_found("unknown principal");
  if (it->second.revoked)
    return unavailable("principal revoked (stopped)");
  {
    std::lock_guard<std::mutex> lock(verify_mu_);
    counters_.inc("sign");
  }
  const Bytes bound = bind_principal(p, msg);
  if (scheme_ == SignatureScheme::kHmacSim) {
    Digest tag = hmac_sha256(it->second.hmac_secret, bound);
    return digest_bytes(tag);
  }
  return rsa_sign(it->second.rsa->priv, bound);
}

bool Keystore::verify(PrincipalId signer, BytesView msg, BytesView sig) const {
  auto it = principals_.find(signer);
  if (it == principals_.end()) return false;
  {
    std::lock_guard<std::mutex> lock(verify_mu_);
    counters_.inc("verify");
    counters_.inc("sig_verify_calls");
  }
  // The cryptographic check itself runs unlocked: the key material is
  // immutable after registration, so concurrent verifies parallelize.
  const Bytes bound = bind_principal(signer, msg);
  if (scheme_ == SignatureScheme::kHmacSim) {
    return hmac_verify(it->second.hmac_secret, bound, sig);
  }
  return rsa_verify(it->second.rsa->pub, bound, sig);
}

bool Keystore::verify_cached(PrincipalId signer, BytesView msg,
                             BytesView sig) const {
  // Unknown principals are rejected without caching: registering the
  // principal later must not be shadowed by a stale negative verdict.
  if (principals_.count(signer) == 0) return false;
  const VerifyCache::Key key = VerifyCache::make_key(signer, msg, sig);
  {
    std::lock_guard<std::mutex> lock(verify_mu_);
    const int memo = verify_cache_.lookup(key);
    if (memo >= 0) {
      counters_.inc("sig_cache_hit");
      return memo == 1;
    }
    counters_.inc("sig_cache_miss");
  }
  // Miss: run the real check outside the lock. Two threads racing on the
  // same key both verify and insert the same verdict — wasted work at
  // worst, never a wrong answer.
  const bool valid = verify(signer, msg, sig);
  std::lock_guard<std::mutex> lock(verify_mu_);
  verify_cache_.insert(key, valid);
  return valid;
}

void Keystore::set_verify_cache_capacity(std::size_t entries) {
  std::lock_guard<std::mutex> lock(verify_mu_);
  verify_cache_.set_capacity(entries);
}

void Keystore::revoke(PrincipalId p) {
  auto it = principals_.find(p);
  if (it != principals_.end()) it->second.revoked = true;
  // Mandatory cache hygiene: a stopped principal's statements must not
  // keep validating straight from memoization.
  std::lock_guard<std::mutex> lock(verify_mu_);
  verify_cache_.purge_principal(p);
}

bool Keystore::is_revoked(PrincipalId p) const {
  auto it = principals_.find(p);
  return it != principals_.end() && it->second.revoked;
}

std::size_t Keystore::signature_size() const {
  if (scheme_ == SignatureScheme::kHmacSim) return kDigestSize;
  return (rsa_bits_ + 7) / 8;
}

}  // namespace bftbc::crypto
