#include "crypto/signature.h"

#include <algorithm>
#include <numeric>

#include "crypto/hmac.h"
#include "util/codec.h"

namespace bftbc::crypto {

Result<Bytes> Signer::sign(BytesView msg) const {
  if (keystore_ == nullptr)
    return unavailable("signer not bound to a keystore");
  return keystore_->sign_internal(principal_, msg);
}

Keystore::Keystore(SignatureScheme scheme, std::uint64_t seed,
                   std::size_t rsa_bits)
    : scheme_(scheme), rsa_bits_(rsa_bits), rng_(seed) {}

Signer Keystore::register_principal(PrincipalId p) {
  auto [it, inserted] = principals_.try_emplace(p);
  if (inserted) {
    if (scheme_ == SignatureScheme::kHmacSim) {
      it->second.hmac_secret = rng_.bytes(32);
    } else {
      it->second.rsa = rsa_generate(rng_, rsa_bits_);
    }
  }
  return Signer(this, p);
}

bool Keystore::is_registered(PrincipalId p) const {
  return principals_.count(p) != 0;
}

namespace {
// Domain-separate the signed bytes by principal so a signature by p over
// m can never validate as a signature by p' over m.
Bytes bind_principal(PrincipalId p, BytesView msg) {
  Bytes bound;
  bound.reserve(msg.size() + 4);
  for (int i = 0; i < 4; ++i)
    bound.push_back(static_cast<std::uint8_t>(p >> (8 * i)));
  append(bound, msg);
  return bound;
}
}  // namespace

Result<Bytes> Keystore::sign_internal(PrincipalId p, BytesView msg) {
  auto it = principals_.find(p);
  if (it == principals_.end()) return not_found("unknown principal");
  if (it->second.revoked)
    return unavailable("principal revoked (stopped)");
  {
    std::lock_guard<std::mutex> lock(verify_mu_);
    counters_.inc("sign");
  }
  const Bytes bound = bind_principal(p, msg);
  if (scheme_ == SignatureScheme::kHmacSim) {
    Digest tag = hmac_sha256(it->second.hmac_secret, bound);
    return digest_bytes(tag);
  }
  return rsa_sign(it->second.rsa->priv, bound);
}

bool Keystore::verify(PrincipalId signer, BytesView msg, BytesView sig) const {
  auto it = principals_.find(signer);
  if (it == principals_.end()) return false;
  {
    std::lock_guard<std::mutex> lock(verify_mu_);
    counters_.inc("verify");
    counters_.inc("sig_verify_calls");
  }
  // The cryptographic check itself runs unlocked: the key material is
  // immutable after registration, so concurrent verifies parallelize.
  const Bytes bound = bind_principal(signer, msg);
  if (scheme_ == SignatureScheme::kHmacSim) {
    return hmac_verify(it->second.hmac_secret, bound, sig);
  }
  return rsa_verify(it->second.rsa->pub, bound, sig);
}

bool Keystore::verify_cached(PrincipalId signer, BytesView msg,
                             BytesView sig) const {
  // Unknown principals are rejected without caching: registering the
  // principal later must not be shadowed by a stale negative verdict.
  if (principals_.count(signer) == 0) return false;
  const VerifyCache::Key key = VerifyCache::make_key(signer, msg, sig);
  {
    std::lock_guard<std::mutex> lock(verify_mu_);
    const int memo = verify_cache_.lookup(key);
    if (memo >= 0) {
      counters_.inc("sig_cache_hit");
      return memo == 1;
    }
    counters_.inc("sig_cache_miss");
  }
  // Miss: run the real check outside the lock. Two threads racing on the
  // same key both verify and insert the same verdict — wasted work at
  // worst, never a wrong answer.
  const bool valid = verify(signer, msg, sig);
  std::lock_guard<std::mutex> lock(verify_mu_);
  verify_cache_.insert(key, valid);
  return valid;
}

std::size_t Keystore::verify_batch(std::vector<VerifyItem>& items) const {
  if (items.empty()) return 0;

  // Hash every key outside the lock, then order item indices so that
  // identical (principal, statement, signature) triples sit adjacent:
  // each distinct triple costs one cache lookup and at most one real
  // cryptographic check, no matter how often the batch repeats it. The
  // grouping also keeps same-principal lookups together (cache-aware:
  // their entries share hot index/LRU neighborhoods).
  std::vector<VerifyCache::Key> keys;
  keys.reserve(items.size());
  for (const VerifyItem& item : items) {
    keys.push_back(
        VerifyCache::make_key(item.principal, item.statement, item.sig));
  }
  std::vector<std::size_t> order(items.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&keys](std::size_t a, std::size_t b) {
              if (keys[a].principal != keys[b].principal)
                return keys[a].principal < keys[b].principal;
              if (keys[a].statement != keys[b].statement)
                return keys[a].statement < keys[b].statement;
              return keys[a].signature < keys[b].signature;
            });

  // Group leaders: the first index of every run of identical keys.
  std::vector<std::size_t> leaders;
  leaders.reserve(order.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (i == 0 || !(keys[order[i]] == keys[order[i - 1]])) {
      leaders.push_back(i);
    }
  }

  // Pass 1 (one lock acquisition): resolve every distinct triple against
  // the cache. -1 marks a miss to be computed.
  std::vector<int> verdicts(leaders.size(), -1);
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  {
    std::lock_guard<std::mutex> lock(verify_mu_);
    for (std::size_t g = 0; g < leaders.size(); ++g) {
      verdicts[g] = verify_cache_.lookup(keys[order[leaders[g]]]);
      if (verdicts[g] >= 0) ++hits;
    }
  }

  // Pass 2 (no lock): real cryptography for the misses. Unknown
  // principals are rejected without caching or counting, exactly like
  // verify()/verify_cached().
  std::size_t crypto_checks = 0;
  std::vector<bool> cacheable(leaders.size(), false);
  for (std::size_t g = 0; g < leaders.size(); ++g) {
    if (verdicts[g] >= 0) continue;
    const VerifyItem& item = items[order[leaders[g]]];
    auto it = principals_.find(item.principal);
    if (it == principals_.end()) {
      verdicts[g] = 0;
      continue;
    }
    ++misses;
    ++crypto_checks;
    cacheable[g] = true;
    const Bytes bound = bind_principal(item.principal, item.statement);
    const bool valid =
        scheme_ == SignatureScheme::kHmacSim
            ? hmac_verify(it->second.hmac_secret, bound, item.sig)
            : rsa_verify(it->second.rsa->pub, bound, item.sig);
    verdicts[g] = valid ? 1 : 0;
  }

  // Pass 3 (one lock acquisition): memoize fresh verdicts and account.
  // Duplicates beyond each group leader are served from the batch's own
  // resolution, which is a hit for accounting purposes.
  {
    std::lock_guard<std::mutex> lock(verify_mu_);
    for (std::size_t g = 0; g < leaders.size(); ++g) {
      if (cacheable[g]) {
        verify_cache_.insert(keys[order[leaders[g]]], verdicts[g] == 1);
      }
    }
    const std::uint64_t dup_hits = items.size() - leaders.size();
    counters_.inc("sig_cache_hit", hits + dup_hits);
    counters_.inc("sig_cache_miss", misses);
    counters_.inc("verify", crypto_checks);
    counters_.inc("sig_verify_calls", crypto_checks);
  }

  // Scatter verdicts back to every item in the group.
  for (std::size_t g = 0; g < leaders.size(); ++g) {
    const std::size_t end =
        g + 1 < leaders.size() ? leaders[g + 1] : order.size();
    for (std::size_t i = leaders[g]; i < end; ++i) {
      items[order[i]].valid = verdicts[g] == 1;
    }
  }
  return crypto_checks;
}

void Keystore::set_verify_cache_capacity(std::size_t entries) {
  std::lock_guard<std::mutex> lock(verify_mu_);
  verify_cache_.set_capacity(entries);
}

void Keystore::revoke(PrincipalId p) {
  auto it = principals_.find(p);
  if (it != principals_.end()) it->second.revoked = true;
  // Mandatory cache hygiene: a stopped principal's statements must not
  // keep validating straight from memoization.
  std::lock_guard<std::mutex> lock(verify_mu_);
  verify_cache_.purge_principal(p);
}

bool Keystore::is_revoked(PrincipalId p) const {
  auto it = principals_.find(p);
  return it != principals_.end() && it->second.revoked;
}

std::size_t Keystore::signature_size() const {
  if (scheme_ == SignatureScheme::kHmacSim) return kDigestSize;
  return (rsa_bits_ + 7) / 8;
}

}  // namespace bftbc::crypto
