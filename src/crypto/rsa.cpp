#include "crypto/rsa.h"

#include "crypto/prime.h"
#include "util/codec.h"

namespace bftbc::crypto {

namespace {

// ASN.1 DigestInfo prefix for SHA-256 (RFC 8017 §9.2 note 1).
constexpr std::uint8_t kSha256DigestInfo[] = {
    0x30, 0x31, 0x30, 0x0d, 0x06, 0x09, 0x60, 0x86, 0x48, 0x01,
    0x65, 0x03, 0x04, 0x02, 0x01, 0x05, 0x00, 0x04, 0x20};

// EMSA-PKCS1-v1_5 encoding: 0x00 0x01 FF..FF 0x00 DigestInfo || H(m).
Bytes emsa_encode(BytesView message, std::size_t em_len) {
  const Digest digest = sha256(message);
  const std::size_t t_len = sizeof(kSha256DigestInfo) + kDigestSize;
  // Caller guarantees em_len >= t_len + 11 via key-size check in keygen.
  Bytes em(em_len, 0xff);
  em[0] = 0x00;
  em[1] = 0x01;
  em[em_len - t_len - 1] = 0x00;
  std::copy(std::begin(kSha256DigestInfo), std::end(kSha256DigestInfo),
            em.begin() + static_cast<std::ptrdiff_t>(em_len - t_len));
  std::copy(digest.begin(), digest.end(),
            em.end() - static_cast<std::ptrdiff_t>(kDigestSize));
  return em;
}

}  // namespace

Bytes RsaPublicKey::encode() const {
  Writer w;
  w.put_bytes(n.to_bytes());
  w.put_bytes(e.to_bytes());
  return std::move(w).take();
}

std::optional<RsaPublicKey> RsaPublicKey::decode(BytesView b) {
  Reader r(b);
  Bytes nb = r.get_bytes();
  Bytes eb = r.get_bytes();
  if (!r.done()) return std::nullopt;
  RsaPublicKey key{BigInt::from_bytes(nb), BigInt::from_bytes(eb)};
  if (key.n.is_zero() || key.e.is_zero()) return std::nullopt;
  return key;
}

RsaKeyPair rsa_generate(Rng& rng, std::size_t bits) {
  const std::size_t min_bits = (sizeof(kSha256DigestInfo) + kDigestSize + 11) * 8;
  if (bits < min_bits) bits = min_bits;

  const BigInt e(65537);
  for (;;) {
    BigInt p = generate_prime(rng, bits / 2);
    BigInt q = generate_prime(rng, bits - bits / 2);
    if (p == q) continue;
    if (p < q) std::swap(p, q);
    const BigInt n = p * q;
    if (n.bit_length() != bits) continue;
    const BigInt phi = (p - BigInt(1)) * (q - BigInt(1));
    if (!BigInt::gcd(e, phi).is_one()) continue;
    const BigInt d = BigInt::mod_inverse(e, phi);
    if (d.is_zero()) continue;

    RsaPrivateKey priv;
    priv.n = n;
    priv.e = e;
    priv.d = d;
    priv.p = p;
    priv.q = q;
    priv.dp = d % (p - BigInt(1));
    priv.dq = d % (q - BigInt(1));
    priv.qinv = BigInt::mod_inverse(q, p);
    return {priv, priv.public_key()};
  }
}

RsaContext::RsaContext(const RsaPublicKey& pub) : mont_n_(pub.n) {}

RsaContext::RsaContext(const RsaPrivateKey& priv)
    : mont_n_(priv.n), mont_p_(Montgomery(priv.p)), mont_q_(Montgomery(priv.q)) {}

namespace {

Bytes rsa_sign_with(const RsaPrivateKey& key, const Montgomery& mp,
                    const Montgomery& mq, BytesView message) {
  const std::size_t k = key.public_key().modulus_bytes();
  const BigInt m = BigInt::from_bytes(emsa_encode(message, k));

  // CRT: s = m^d mod n computed as two half-size exponentiations.
  const BigInt m1 = mp.mod_exp(m % key.p, key.dp);
  const BigInt m2 = mq.mod_exp(m % key.q, key.dq);
  // h = qinv * (m1 - m2) mod p (lift m1-m2 into non-negative range first)
  BigInt diff;
  if (m1 >= m2 % key.p) {
    diff = m1 - (m2 % key.p);
  } else {
    diff = (m1 + key.p) - (m2 % key.p);
  }
  const BigInt h = (key.qinv * diff) % key.p;
  const BigInt s = m2 + h * key.q;
  return s.to_bytes_padded(k);
}

bool rsa_verify_with(const RsaPublicKey& key, const Montgomery& mn,
                     BytesView message, BytesView signature) {
  const std::size_t k = key.modulus_bytes();
  if (signature.size() != k) return false;
  const BigInt s = BigInt::from_bytes(signature);
  if (s >= key.n) return false;
  const BigInt m = mn.mod_exp(s, key.e);
  const Bytes em = m.to_bytes_padded(k);
  const Bytes expect = emsa_encode(message, k);
  return constant_time_equal(em, expect);
}

}  // namespace

Bytes rsa_sign(const RsaPrivateKey& key, BytesView message) {
  return rsa_sign_with(key, Montgomery(key.p), Montgomery(key.q), message);
}

Bytes rsa_sign(const RsaPrivateKey& key, const RsaContext& ctx,
               BytesView message) {
  return rsa_sign_with(key, *ctx.mont_p(), *ctx.mont_q(), message);
}

bool rsa_verify(const RsaPublicKey& key, BytesView message,
                BytesView signature) {
  return rsa_verify_with(key, Montgomery(key.n), message, signature);
}

bool rsa_verify(const RsaPublicKey& key, const RsaContext& ctx,
                BytesView message, BytesView signature) {
  return rsa_verify_with(key, ctx.mont_n(), message, signature);
}

}  // namespace bftbc::crypto
