// Scenario: one fully specified randomized run of the BFT-BC system.
//
// A Scenario is the unit the explorer samples, executes, shrinks, and
// serializes. It covers the cross product the repo already supports:
// f ∈ {1,2}, the three protocol modes, LinkConfig adversity knobs,
// correct-client workload mixes (including pipelined submit_write and
// mid-run stops), the four §3.2 attack clients (with replay-after-stop
// through a Colluder), Byzantine replica slots, and replica partition
// windows.
//
// Scenarios are JSON-serializable both ways: to_json() via the metrics
// JsonWriter (the same emitter the bench pipeline uses), from_json() via
// util/json_value.h — so a failing run's minimal scenario can be
// replayed with `bftbc_explore --replay scenario.json`.
//
// Everything is derived deterministically from `seed`: the cluster rng,
// the per-client workload rngs, and the sampling itself. Two processes
// given the same scenario perform the identical event sequence.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "quorum/config.h"
#include "quorum/statements.h"
#include "quorum/timestamp.h"
#include "sim/network.h"

namespace bftbc::explore {

enum class Mode { kBase, kOptimized, kStrong };

enum class ByzSpecies {
  kSilent,
  kStale,
  kGarbageSig,
  kEquivocSign,
  kFlipValue,
};

enum class AttackKind {
  kEquivocate,    // §3.2 attack 1
  kPartialWrite,  // §3.2 attack 2
  kTimestampHog,  // §3.2 attack 3
  kLurkingStash,  // §3.2 attack 4 (optionally + Colluder replay-after-stop)
};

std::string_view mode_name(Mode m);
std::string_view species_name(ByzSpecies s);
std::string_view attack_name(AttackKind k);

struct ByzReplicaSlot {
  std::uint32_t slot = 0;
  ByzSpecies species = ByzSpecies::kSilent;
};

struct ClientPlan {
  quorum::ClientId id = 1;
  std::uint32_t ops = 4;
  double write_ratio = 0.5;  // ignored for pipelined clients (write-only)
  bool pipelined = false;    // issue all writes through submit_write
  std::uint32_t window = 2;  // max_inflight for pipelined clients
  // Stop (revoke key + record the paper's stop event) after this many
  // completed ops; 0 = never. Only meaningful for non-pipelined clients.
  std::uint32_t stop_after_ops = 0;
};

struct AttackPlan {
  AttackKind kind = AttackKind::kLurkingStash;
  quorum::ClientId id = 66;
  quorum::ObjectId object = 1;
  // Stash goal (kLurkingStash) or prepare attempts (kTimestampHog).
  std::uint32_t goal = 2;
  // kLurkingStash only: hand the stash to a colluder and replay it,
  // one envelope at a time with probe reads in between, after the stop.
  bool collude_replay = false;
  // Nonzero = this attack coordinates with every other attack carrying
  // the same group id: all members are lurking stashes against ONE
  // object, their stashes pool into a single colluder, and the replay
  // starts only after every member has stopped — the paper's worst
  // case, where the bound must hold PER stopped client even when the
  // writes were planned jointly. The sampler and mutators keep members'
  // kind and object aligned; the runner pools whichever members are
  // lurking stashes.
  std::uint32_t collusion_group = 0;
};

// Partition one replica from every client node for a virtual-time window.
struct PartitionPlan {
  std::uint32_t replica = 0;
  sim::Time at = 0;
  sim::Time heal_at = 0;
};

// Crash one replica slot with TRUE state loss at `at`, restart it at
// `restart_at` rebuilding its ObjectStates via STATE-XFER from the
// surviving quorum (harness restart_replica). In sharded runs the slot
// crashes in every group, mirroring how Byzantine slots apply. The
// checker's guarantees must hold straight through the downtime and the
// recovery — a restarted replica that forgot a lurking prepare would
// break Lemma 1, which is exactly what this dimension hunts.
struct CrashPlan {
  std::uint32_t replica = 0;
  sim::Time at = 0;
  sim::Time restart_at = 0;
};

struct Scenario {
  std::uint64_t seed = 1;
  std::uint32_t f = 1;
  Mode mode = Mode::kBase;
  // MAC-authenticator mode (§3.3.2) for point-to-point traffic; the
  // checker's guarantees must hold identically in both auth modes.
  bool mac_auth = false;
  // When false, run_scenario() installs more Byzantine replicas than f —
  // the deliberately-weakened configuration used to prove the explorer
  // detects and shrinks real violations. sample() always keeps it true.
  bool enforce_fault_budget = true;
  std::uint32_t objects = 1;
  // Number of independent replica groups. 1 = the classic single-group
  // run; >1 drives a ShardedCluster through routing clients and the
  // checker verdict becomes per-shard (split_history + one checker
  // instance per shard). Byzantine slots apply to the same slot in every
  // shard; partitions cut the slot across all shards; attacks aim at the
  // shard owning their object.
  std::uint32_t shards = 1;

  // Link adversity (applied to the cluster-wide default link).
  double loss = 0.0;
  double dup = 0.0;
  double corrupt = 0.0;
  sim::Time base_delay = 500 * sim::kMicrosecond;
  sim::Time jitter_mean = 200 * sim::kMicrosecond;

  std::vector<ByzReplicaSlot> byz_replicas;
  std::vector<ClientPlan> clients;
  std::vector<AttackPlan> attacks;
  std::vector<PartitionPlan> partitions;
  std::vector<CrashPlan> crashes;

  std::uint32_t n() const { return 3 * f + 1; }
  bool within_fault_budget() const { return byz_replicas.size() <= f; }

  // Mode-correct lurking bound: 1 for base and strong, 2 for optimized.
  // Strong runs are additionally held to ok_plus(max_b(), 2) — the §7
  // overwrite-masking bound.
  int max_b() const { return mode == Mode::kOptimized ? 2 : 1; }

  // Deterministically samples a scenario from the supported cross
  // product; the result's `seed` is `run_seed`.
  static Scenario sample(std::uint64_t run_seed);

  std::string to_json() const;
  static std::optional<Scenario> from_json(std::string_view text);

  // Compact human label for reports: "f1-base-byz1-atk2-loss".
  std::string name() const;
};

}  // namespace bftbc::explore
