#include "explore/corpus.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace bftbc::explore {

namespace {

// FNV-1a 64 over the scenario JSON — stable content-addressed filenames
// so identical entries collide into one file and re-saves are no-ops.
std::uint64_t fnv1a(const std::string& text) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : text) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string hex64(std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[v & 0xf];
    v >>= 4;
  }
  return out;
}

}  // namespace

const CorpusEntry& Corpus::pick(Rng& rng) const {
  // Novelty-weighted lottery (weight = novelty + 1 so replayed seed
  // entries stay reachable): entries that opened more coverage get
  // proportionally more mutation attention.
  std::uint64_t total = 0;
  for (const CorpusEntry& e : entries_) total += e.novelty + 1;
  std::uint64_t ticket = rng.next_below(total);
  for (const CorpusEntry& e : entries_) {
    const std::uint64_t weight = e.novelty + 1;
    if (ticket < weight) return e;
    ticket -= weight;
  }
  return entries_.back();
}

std::vector<CorpusEntry> Corpus::load_dir(const std::string& dir) {
  std::vector<CorpusEntry> loaded;
  std::error_code ec;
  std::vector<std::string> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string path = entry.path().string();
    if (path.size() < 5 || path.substr(path.size() - 5) != ".json") continue;
    files.push_back(path);
  }
  std::sort(files.begin(), files.end());
  for (const std::string& path : files) {
    std::ifstream in(path);
    std::ostringstream text;
    text << in.rdbuf();
    std::optional<Scenario> s = Scenario::from_json(text.str());
    if (!s.has_value()) continue;
    CorpusEntry e;
    e.scenario = std::move(*s);
    loaded.push_back(std::move(e));
  }
  return loaded;
}

std::size_t Corpus::save_dir(const std::string& dir) const {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  std::size_t written = 0;
  for (const CorpusEntry& e : entries_) {
    const std::string json = e.scenario.to_json();
    const std::string path = dir + "/" + hex64(fnv1a(json)) + ".json";
    std::ofstream out(path);
    if (!out) continue;
    out << json << "\n";
    ++written;
  }
  return written;
}

Scenario mutate_scenario(const Scenario& base, const Scenario* donor,
                         std::uint64_t child_seed) {
  Rng rng(child_seed ^ 0x6d75746174ULL);  // decorrelate from the run seed
  Scenario s = base;
  s.seed = child_seed;

  const int n_mutations = 1 + static_cast<int>(rng.next_below(2));
  for (int m = 0; m < n_mutations; ++m) {
    switch (rng.next_below(10)) {
      case 0: {  // protocol-mode rotation
        s.mode = static_cast<Mode>((static_cast<int>(s.mode) + 1 +
                                    static_cast<int>(rng.next_below(2))) %
                                   3);
        break;
      }
      case 1: {  // auth-mode toggle
        s.mac_auth = !s.mac_auth;
        break;
      }
      case 2: {  // link adversity profile switch
        switch (rng.next_below(3)) {
          case 0: s.loss = 0.0;  s.dup = 0.0;  s.corrupt = 0.0;  break;
          case 1: s.loss = 0.03; s.dup = 0.03; s.corrupt = 0.01; break;
          default: s.loss = 0.08; s.dup = 0.05; s.corrupt = 0.02; break;
        }
        break;
      }
      case 3: {  // workload knob perturbation
        for (ClientPlan& plan : s.clients) {
          if (rng.next_bool(0.5)) {
            plan.ops = 1 + static_cast<std::uint32_t>(rng.next_below(8));
            if (plan.stop_after_ops >= plan.ops) plan.stop_after_ops = 0;
          }
          if (!plan.pipelined && rng.next_bool(0.2) && plan.ops >= 2) {
            plan.stop_after_ops = plan.ops / 2;
          }
        }
        break;
      }
      case 4: {  // plan splicing from the donor
        if (donor != nullptr && !donor->attacks.empty() &&
            s.attacks.size() < 4) {
          AttackPlan spliced =
              donor->attacks[rng.next_below(donor->attacks.size())];
          if (spliced.object > s.objects) spliced.object = s.objects;
          spliced.collusion_group = 0;  // joins as an independent actor
          s.attacks.push_back(spliced);
        } else if (donor != nullptr && !donor->clients.empty() &&
                   s.clients.size() < 4) {
          s.clients.push_back(
              donor->clients[rng.next_below(donor->clients.size())]);
        }
        break;
      }
      case 5: {  // attack-phase reordering (start times follow the order)
        if (s.attacks.size() >= 2) {
          const std::size_t i = rng.next_below(s.attacks.size());
          const std::size_t j = rng.next_below(s.attacks.size());
          std::swap(s.attacks[i], s.attacks[j]);
        }
        break;
      }
      case 6: {  // crash-schedule jiggle
        if (s.crashes.empty()) {
          // Only where the sampler would allow one: crashes stay
          // exclusive with Byzantine slots and partitions so concurrent
          // unavailability never exceeds f.
          if (s.byz_replicas.empty() && s.partitions.empty()) {
            CrashPlan c;
            c.replica = static_cast<std::uint32_t>(rng.next_below(s.n()));
            c.at = 25 * sim::kMillisecond;
            c.restart_at = 60 * sim::kMillisecond;
            s.crashes.push_back(c);
          }
        } else if (rng.next_bool(0.3)) {
          s.crashes.clear();
        } else {
          CrashPlan& c = s.crashes.front();
          c.at = (15 + 5 * rng.next_below(5)) * sim::kMillisecond;
          c.restart_at = rng.next_bool(0.2)
                             ? 0  // never restarts: down for the run
                             : c.at + (20 + 10 * rng.next_below(4)) *
                                          sim::kMillisecond;
        }
        break;
      }
      case 7: {  // shard toggle (the rarest structural dimension)
        if (s.shards > 1) {
          s.shards = 1;
        } else {
          s.shards = 2;
          s.objects = 4;  // give the shard map something to spread
        }
        break;
      }
      case 8: {  // f toggle, dropping plans the smaller group invalidates
        s.f = s.f == 1 ? 2 : 1;
        const std::uint32_t n = s.n();
        std::erase_if(s.byz_replicas,
                      [n](const ByzReplicaSlot& b) { return b.slot >= n; });
        std::erase_if(s.partitions,
                      [n](const PartitionPlan& p) { return p.replica >= n; });
        std::erase_if(s.crashes,
                      [n](const CrashPlan& c) { return c.replica >= n; });
        break;
      }
      default: {  // collusion toggle
        bool grouped = false;
        for (const AttackPlan& a : s.attacks) grouped |= a.collusion_group != 0;
        if (grouped) {
          for (AttackPlan& a : s.attacks) a.collusion_group = 0;
        } else if (s.attacks.size() >= 2) {
          const quorum::ObjectId target = s.attacks[0].object;
          for (AttackPlan& a : s.attacks) {
            a.kind = AttackKind::kLurkingStash;
            a.object = target;
            a.goal = 1 + static_cast<std::uint32_t>(rng.next_below(2));
            a.collude_replay = true;
            a.collusion_group = 1;
          }
        }
        break;
      }
    }
  }

  // Re-establish the runner's id invariants (splicing can duplicate
  // them): clients are 1..k, attacks 60..60+k — all below kProbeClient
  // and kColluderNodeBase respectively.
  for (std::size_t i = 0; i < s.clients.size(); ++i) {
    s.clients[i].id = static_cast<quorum::ClientId>(1 + i);
  }
  for (std::size_t i = 0; i < s.attacks.size(); ++i) {
    s.attacks[i].id = static_cast<quorum::ClientId>(60 + i);
  }
  return s;
}

}  // namespace bftbc::explore
