#include "explore/scenario.h"

#include "util/json_value.h"
#include "metrics/json.h"
#include "util/rng.h"

namespace bftbc::explore {

std::string_view mode_name(Mode m) {
  switch (m) {
    case Mode::kBase: return "base";
    case Mode::kOptimized: return "optimized";
    case Mode::kStrong: return "strong";
  }
  return "base";
}

std::string_view species_name(ByzSpecies s) {
  switch (s) {
    case ByzSpecies::kSilent: return "silent";
    case ByzSpecies::kStale: return "stale";
    case ByzSpecies::kGarbageSig: return "garbage_sig";
    case ByzSpecies::kEquivocSign: return "equivoc_sign";
    case ByzSpecies::kFlipValue: return "flip_value";
  }
  return "silent";
}

std::string_view attack_name(AttackKind k) {
  switch (k) {
    case AttackKind::kEquivocate: return "equivocate";
    case AttackKind::kPartialWrite: return "partial_write";
    case AttackKind::kTimestampHog: return "timestamp_hog";
    case AttackKind::kLurkingStash: return "lurking_stash";
  }
  return "lurking_stash";
}

namespace {

std::optional<Mode> mode_from(const std::string& s) {
  if (s == "base") return Mode::kBase;
  if (s == "optimized") return Mode::kOptimized;
  if (s == "strong") return Mode::kStrong;
  return std::nullopt;
}

std::optional<ByzSpecies> species_from(const std::string& s) {
  if (s == "silent") return ByzSpecies::kSilent;
  if (s == "stale") return ByzSpecies::kStale;
  if (s == "garbage_sig") return ByzSpecies::kGarbageSig;
  if (s == "equivoc_sign") return ByzSpecies::kEquivocSign;
  if (s == "flip_value") return ByzSpecies::kFlipValue;
  return std::nullopt;
}

std::optional<AttackKind> attack_from(const std::string& s) {
  if (s == "equivocate") return AttackKind::kEquivocate;
  if (s == "partial_write") return AttackKind::kPartialWrite;
  if (s == "timestamp_hog") return AttackKind::kTimestampHog;
  if (s == "lurking_stash") return AttackKind::kLurkingStash;
  return std::nullopt;
}

}  // namespace

Scenario Scenario::sample(std::uint64_t run_seed) {
  Rng rng(run_seed ^ 0x5ce9a710u);  // decorrelate from the cluster rng
  Scenario s;
  s.seed = run_seed;
  s.f = rng.next_bool(0.2) ? 2 : 1;
  switch (rng.next_below(3)) {
    case 0: s.mode = Mode::kBase; break;
    case 1: s.mode = Mode::kOptimized; break;
    default: s.mode = Mode::kStrong; break;
  }
  s.objects = 1 + static_cast<std::uint32_t>(rng.next_below(2));
  s.mac_auth = rng.next_bool(0.3);
  // Occasionally run the workload across independent shard groups; more
  // objects then, so the shard map has something to spread.
  if (rng.next_bool(0.15)) {
    s.shards = 2;
    s.objects = 4;
  }

  // Link adversity profile: quiet / noisy / harsh. Loss and duplication
  // are retried through; corruption is caught by auth checks.
  const std::uint64_t profile = rng.next_below(100);
  if (profile < 50) {
    s.loss = 0.0;
    s.dup = 0.0;
    s.corrupt = 0.0;
  } else if (profile < 85) {
    s.loss = 0.03;
    s.dup = 0.03;
    s.corrupt = 0.01;
  } else {
    s.loss = 0.08;
    s.dup = 0.05;
    s.corrupt = 0.02;
  }
  s.jitter_mean = rng.next_bool(0.3) ? sim::kMillisecond
                                     : 200 * sim::kMicrosecond;

  // Byzantine replica slots, always within the f budget when sampling.
  if (rng.next_bool(0.5)) {
    const std::uint32_t count =
        s.f == 2 && rng.next_bool(0.4) ? 2 : 1;
    for (std::uint32_t i = 0; i < count; ++i) {
      ByzReplicaSlot slot;
      // Distinct slots from the top of the id range.
      slot.slot = s.n() - 1 - i;
      slot.species = static_cast<ByzSpecies>(rng.next_below(5));
      s.byz_replicas.push_back(slot);
    }
  }

  // Correct-client workload.
  const std::uint32_t n_clients =
      1 + static_cast<std::uint32_t>(rng.next_below(3));
  for (std::uint32_t c = 0; c < n_clients; ++c) {
    ClientPlan plan;
    plan.id = static_cast<quorum::ClientId>(1 + c);
    plan.ops = 3 + static_cast<std::uint32_t>(rng.next_below(4));
    plan.write_ratio = 0.3 + 0.2 * static_cast<double>(rng.next_below(3));
    plan.pipelined = rng.next_bool(0.25);
    if (plan.pipelined) {
      plan.window = 2 + static_cast<std::uint32_t>(rng.next_below(2));
    } else if (rng.next_bool(0.2) && plan.ops >= 2) {
      // Mid-run stop of a correct client: the checker must stay happy
      // with its pre-stop ops in the history.
      plan.stop_after_ops = plan.ops / 2;
    }
    s.clients.push_back(plan);
  }

  // §3.2 attack clients.
  const std::uint32_t n_attacks =
      static_cast<std::uint32_t>(rng.next_below(3));
  for (std::uint32_t a = 0; a < n_attacks; ++a) {
    AttackPlan plan;
    plan.kind = static_cast<AttackKind>(rng.next_below(4));
    plan.id = static_cast<quorum::ClientId>(60 + a);
    plan.object =
        1 + static_cast<quorum::ObjectId>(rng.next_below(s.objects));
    if (plan.kind == AttackKind::kLurkingStash) {
      plan.goal = 2 + static_cast<std::uint32_t>(rng.next_below(2));
      plan.collude_replay = rng.next_bool(0.6);
    } else if (plan.kind == AttackKind::kTimestampHog) {
      plan.goal = 3;
    }
    s.attacks.push_back(plan);
  }

  // Colluding multi-client plan: occasionally convert a multi-attack
  // sample into one coordinated group — every member a lurking stash
  // against the first member's object, replayed jointly after all of
  // them stop. The bound must hold per stopped client even then.
  if (s.attacks.size() >= 2 && rng.next_bool(0.35)) {
    const quorum::ObjectId target = s.attacks[0].object;
    for (AttackPlan& plan : s.attacks) {
      plan.kind = AttackKind::kLurkingStash;
      plan.object = target;
      plan.goal = 1 + static_cast<std::uint32_t>(rng.next_below(2));
      plan.collude_replay = true;
      plan.collusion_group = 1;
    }
  }

  // One replica partition window; only without Byzantine replicas so a
  // quorum stays reachable throughout (liveness is asserted, not hoped).
  if (s.byz_replicas.empty() && rng.next_bool(0.25)) {
    PartitionPlan p;
    p.replica = static_cast<std::uint32_t>(rng.next_below(s.n()));
    p.at = 30 * sim::kMillisecond;
    p.heal_at = 70 * sim::kMillisecond;
    s.partitions.push_back(p);
  }

  // One crash/restart window with state-transfer recovery. Mutually
  // exclusive with Byzantine replicas AND partitions so concurrent
  // unavailability never exceeds f — a crash on top of a partitioned or
  // lying slot could make quorums unreachable and the run vacuous (the
  // shard/attack edge case that used to burn soak budget in timeouts).
  if (s.byz_replicas.empty() && s.partitions.empty() && rng.next_bool(0.3)) {
    CrashPlan c;
    c.replica = static_cast<std::uint32_t>(rng.next_below(s.n()));
    c.at = 25 * sim::kMillisecond;
    c.restart_at = 60 * sim::kMillisecond;
    s.crashes.push_back(c);
  }

  return s;
}

std::string Scenario::to_json() const {
  metrics::JsonWriter w;
  w.begin_object();
  w.key("seed"); w.value(seed);
  w.key("f"); w.value(static_cast<std::uint64_t>(f));
  w.key("mode"); w.value(mode_name(mode));
  w.key("mac_auth"); w.value(mac_auth);
  w.key("enforce_fault_budget"); w.value(enforce_fault_budget);
  w.key("objects"); w.value(static_cast<std::uint64_t>(objects));
  w.key("shards"); w.value(static_cast<std::uint64_t>(shards));
  w.key("link");
  w.begin_object();
  w.key("loss"); w.value(loss);
  w.key("dup"); w.value(dup);
  w.key("corrupt"); w.value(corrupt);
  w.key("base_delay_ns"); w.value(static_cast<std::uint64_t>(base_delay));
  w.key("jitter_mean_ns"); w.value(static_cast<std::uint64_t>(jitter_mean));
  w.end_object();
  w.key("byz_replicas");
  w.begin_array();
  for (const ByzReplicaSlot& b : byz_replicas) {
    w.begin_object();
    w.key("slot"); w.value(static_cast<std::uint64_t>(b.slot));
    w.key("species"); w.value(species_name(b.species));
    w.end_object();
  }
  w.end_array();
  w.key("clients");
  w.begin_array();
  for (const ClientPlan& c : clients) {
    w.begin_object();
    w.key("id"); w.value(static_cast<std::uint64_t>(c.id));
    w.key("ops"); w.value(static_cast<std::uint64_t>(c.ops));
    w.key("write_ratio"); w.value(c.write_ratio);
    w.key("pipelined"); w.value(c.pipelined);
    w.key("window"); w.value(static_cast<std::uint64_t>(c.window));
    w.key("stop_after_ops");
    w.value(static_cast<std::uint64_t>(c.stop_after_ops));
    w.end_object();
  }
  w.end_array();
  w.key("attacks");
  w.begin_array();
  for (const AttackPlan& a : attacks) {
    w.begin_object();
    w.key("kind"); w.value(attack_name(a.kind));
    w.key("id"); w.value(static_cast<std::uint64_t>(a.id));
    w.key("object"); w.value(static_cast<std::uint64_t>(a.object));
    w.key("goal"); w.value(static_cast<std::uint64_t>(a.goal));
    w.key("collude_replay"); w.value(a.collude_replay);
    w.key("collusion_group");
    w.value(static_cast<std::uint64_t>(a.collusion_group));
    w.end_object();
  }
  w.end_array();
  w.key("partitions");
  w.begin_array();
  for (const PartitionPlan& p : partitions) {
    w.begin_object();
    w.key("replica"); w.value(static_cast<std::uint64_t>(p.replica));
    w.key("at_ns"); w.value(static_cast<std::uint64_t>(p.at));
    w.key("heal_at_ns"); w.value(static_cast<std::uint64_t>(p.heal_at));
    w.end_object();
  }
  w.end_array();
  w.key("crashes");
  w.begin_array();
  for (const CrashPlan& c : crashes) {
    w.begin_object();
    w.key("replica"); w.value(static_cast<std::uint64_t>(c.replica));
    w.key("at_ns"); w.value(static_cast<std::uint64_t>(c.at));
    w.key("restart_at_ns"); w.value(static_cast<std::uint64_t>(c.restart_at));
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return std::move(w).take();
}

std::optional<Scenario> Scenario::from_json(std::string_view text) {
  const std::optional<JsonValue> doc = JsonValue::parse(text);
  if (!doc.has_value() || !doc->is_object()) return std::nullopt;

  Scenario s;
  s.seed = doc->u64("seed", 1);
  s.f = static_cast<std::uint32_t>(doc->u64("f", 1));
  if (s.f < 1 || s.f > 3) return std::nullopt;
  const std::optional<Mode> mode = mode_from(doc->string("mode", "base"));
  if (!mode.has_value()) return std::nullopt;
  s.mode = *mode;
  s.mac_auth = doc->boolean("mac_auth", false);
  s.enforce_fault_budget = doc->boolean("enforce_fault_budget", true);
  s.objects = static_cast<std::uint32_t>(doc->u64("objects", 1));
  if (s.objects < 1 || s.objects > 16) return std::nullopt;
  s.shards = static_cast<std::uint32_t>(doc->u64("shards", 1));
  if (s.shards < 1 || s.shards > 8) return std::nullopt;

  if (const JsonValue* link = doc->find("link")) {
    s.loss = link->num("loss", 0.0);
    s.dup = link->num("dup", 0.0);
    s.corrupt = link->num("corrupt", 0.0);
    s.base_delay = link->u64("base_delay_ns", s.base_delay);
    s.jitter_mean = link->u64("jitter_mean_ns", s.jitter_mean);
    if (s.loss < 0 || s.loss >= 1 || s.dup < 0 || s.dup > 1 ||
        s.corrupt < 0 || s.corrupt > 1) {
      return std::nullopt;
    }
  }

  if (const JsonValue* arr = doc->find("byz_replicas")) {
    for (const JsonValue& e : arr->items()) {
      ByzReplicaSlot b;
      b.slot = static_cast<std::uint32_t>(e.u64("slot", 0));
      const std::optional<ByzSpecies> sp =
          species_from(e.string("species", "silent"));
      if (!sp.has_value() || b.slot >= s.n()) return std::nullopt;
      b.species = *sp;
      s.byz_replicas.push_back(b);
    }
  }

  if (const JsonValue* arr = doc->find("clients")) {
    for (const JsonValue& e : arr->items()) {
      ClientPlan c;
      c.id = static_cast<quorum::ClientId>(e.u64("id", 1));
      c.ops = static_cast<std::uint32_t>(e.u64("ops", 4));
      c.write_ratio = e.num("write_ratio", 0.5);
      c.pipelined = e.boolean("pipelined", false);
      c.window = static_cast<std::uint32_t>(e.u64("window", 2));
      c.stop_after_ops =
          static_cast<std::uint32_t>(e.u64("stop_after_ops", 0));
      if (c.id == 0 || c.ops == 0 || c.ops > 1000) return std::nullopt;
      s.clients.push_back(c);
    }
  }

  if (const JsonValue* arr = doc->find("attacks")) {
    for (const JsonValue& e : arr->items()) {
      AttackPlan a;
      const std::optional<AttackKind> k =
          attack_from(e.string("kind", "lurking_stash"));
      if (!k.has_value()) return std::nullopt;
      a.kind = *k;
      a.id = static_cast<quorum::ClientId>(e.u64("id", 66));
      a.object = e.u64("object", 1);
      a.goal = static_cast<std::uint32_t>(e.u64("goal", 2));
      a.collude_replay = e.boolean("collude_replay", false);
      a.collusion_group =
          static_cast<std::uint32_t>(e.u64("collusion_group", 0));
      if (a.id == 0 || a.object == 0 || a.object > s.objects ||
          a.goal > 100) {
        return std::nullopt;
      }
      s.attacks.push_back(a);
    }
  }

  if (const JsonValue* arr = doc->find("partitions")) {
    for (const JsonValue& e : arr->items()) {
      PartitionPlan p;
      p.replica = static_cast<std::uint32_t>(e.u64("replica", 0));
      p.at = e.u64("at_ns", 0);
      p.heal_at = e.u64("heal_at_ns", 0);
      if (p.replica >= s.n() || p.heal_at <= p.at) return std::nullopt;
      s.partitions.push_back(p);
    }
  }

  if (const JsonValue* arr = doc->find("crashes")) {
    for (const JsonValue& e : arr->items()) {
      CrashPlan c;
      c.replica = static_cast<std::uint32_t>(e.u64("replica", 0));
      c.at = e.u64("at_ns", 0);
      c.restart_at = e.u64("restart_at_ns", 0);
      // restart_at == 0 (never restarts) is allowed; a nonzero restart
      // must come after the crash.
      if (c.replica >= s.n() ||
          (c.restart_at != 0 && c.restart_at <= c.at)) {
        return std::nullopt;
      }
      s.crashes.push_back(c);
    }
  }

  return s;
}

std::string Scenario::name() const {
  std::string out = "f" + std::to_string(f) + "-";
  out += mode_name(mode);
  if (mac_auth) out += "-mac";
  if (shards > 1) out += "-s" + std::to_string(shards);
  if (!byz_replicas.empty()) {
    out += "-byz" + std::to_string(byz_replicas.size());
  }
  if (!attacks.empty()) {
    out += "-atk" + std::to_string(attacks.size());
  }
  if (!partitions.empty()) out += "-part";
  if (!crashes.empty()) out += "-crash";
  for (const AttackPlan& a : attacks) {
    if (a.collusion_group != 0) {
      out += "-collude";
      break;
    }
  }
  for (const ClientPlan& c : clients) {
    if (c.pipelined) {
      out += "-pipe";
      break;
    }
  }
  if (loss > 0) out += "-lossy";
  if (!enforce_fault_budget) out += "-WEAKENED";
  return out;
}

}  // namespace bftbc::explore
