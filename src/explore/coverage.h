// Coverage map for the guided explorer (DESIGN.md §14).
//
// A coverage signal is a short string naming one cheap behavioral
// observation of a run: a replica counter branch that fired ("r:" +
// counter name — certificate paths, drop verdicts, GC/eviction,
// state-transfer machinery), a prepare-list depth bucket, a checker
// near-miss, a per-shard verdict branch, or a structural scenario knob.
// The universe is small (a few hundred strings) and closed under the
// counter name space, so set membership — not edge counts — is the
// whole feedback: a run is NOVEL iff it exercises at least one signal
// no earlier run did.
//
// Everything is std::set-based and therefore iteration-deterministic:
// identical run sequences produce identical maps, curves, and reports.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

namespace bftbc::explore {

// floor(log2(v)) + 1, with bucket(0) == 0 — collapses magnitudes into a
// handful of signals so "deeper than ever before" is novelty but every
// +1 is not.
inline std::uint32_t log2_bucket(std::uint64_t v) {
  std::uint32_t b = 0;
  while (v != 0) {
    ++b;
    v >>= 1;
  }
  return b;
}

class CoverageMap {
 public:
  // Adds every signal to the map; returns how many were new.
  std::size_t absorb(const std::vector<std::string>& signals) {
    std::size_t novel = 0;
    for (const std::string& s : signals) {
      if (seen_.insert(s).second) ++novel;
    }
    return novel;
  }

  // Novelty check without absorbing.
  std::size_t would_add(const std::vector<std::string>& signals) const {
    std::size_t novel = 0;
    for (const std::string& s : signals) {
      if (seen_.count(s) == 0) ++novel;
    }
    return novel;
  }

  std::size_t size() const { return seen_.size(); }
  const std::set<std::string>& seen() const { return seen_; }

 private:
  std::set<std::string> seen_;
};

}  // namespace bftbc::explore
