// Explorer: seed-driven randomized scenario execution with BFT-
// linearizability checking and automatic shrinking (Jepsen-style, but
// fully deterministic on the discrete-event simulator).
//
// explore() samples and runs N scenarios derived from a base seed. Every
// run drives a harness::Cluster, records correct-client operations
// through harness/recording.h into a checker::History, and holds the
// result to the mode-correct bound: CheckResult::ok(1) for base,
// ok(2) for optimized, ok_plus(1, 2) for strong (§7 overwrite masking).
// Liveness is asserted too: within the fault budget, every operation and
// attack must finish inside the event budget.
//
// On failure the explorer greedily shrinks the scenario — drop clients,
// attacks, Byzantine replicas, and partitions; halve op counts and stash
// goals; quiet the link — re-running after each candidate edit and
// keeping it only while the same failure class reproduces. The minimal
// scenario JSON plus its event-ring trace land in the artifacts dir for
// one-command replay: `bftbc_explore --replay scenario.json`.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "explore/scenario.h"

namespace bftbc::explore {

// The always-present correct client that seeds every object, probes
// between staged colluder replays, and performs the final quiescent
// reads. Scenario client ids must stay below it.
inline constexpr quorum::ClientId kProbeClient = 50;

// Colluder transports during staged replay live on node ids from here up
// (one per replaying attack); attack ids must stay below it.
inline constexpr quorum::ClientId kColluderNodeBase = 200;

struct RunOutcome {
  bool completed = false;  // workload + attacks finished within budget
  bool safety_ok = true;   // checker verdict at the mode-correct bound
  int max_lurking = 0;
  std::size_t events = 0;       // simulator events executed
  std::size_t history_ops = 0;  // completed recorded operations
  // Attack actors whose pre-attack pmax fetch starved (gave up at the
  // fetch deadline) — typically an attack aimed at an object whose
  // replicas were partitioned away. The attack then ran against a
  // default timestamp and proves nothing; the runner classifies these
  // so soak budgets are not mistaken for real adversarial coverage.
  int vacuous_attacks = 0;
  // Completed ops whose interval overlapped a replica's crash downtime.
  std::size_t ops_spanning_crashes = 0;
  // Behavioral coverage signals this run exercised (sorted, deduped):
  // replica counter branches (certificate paths, drop verdicts, GC and
  // eviction events, state-transfer machinery), prepare-list depth
  // buckets, checker near-misses, per-shard verdict branches, and the
  // scenario's structural knobs. Input to the guided explore loop's
  // CoverageMap.
  std::vector<std::string> signals;
  // Empty when clean; otherwise "safety: ..." or "liveness: ...". The
  // prefix is the failure class shrinking preserves.
  std::string failure;
  // Multi-shard runs only: one verdict per shard from its own checker
  // instance over its slice of the split history — "ok" or the checker
  // summary. Empty for single-group runs.
  std::vector<std::string> shard_verdicts;

  bool failed() const { return !failure.empty(); }
};

struct ExplorerOptions {
  std::uint64_t seed = 1;
  std::uint32_t runs = 50;
  // Where minimal scenario JSON + traces are written; empty disables
  // artifact dumping (the library stays filesystem-free then).
  std::string artifacts_dir;
  // Max candidate executions one shrink is allowed to spend.
  std::uint32_t shrink_budget = 64;
  // Coverage-guided mutational mode: instead of sampling every scenario
  // fresh, rank a corpus of coverage-novel scenarios and mostly mutate
  // corpus entries (knob perturbation, plan splicing, attack reordering,
  // crash jiggle). Uniform sampling remains the fallback arm so the
  // search never starves. Fully seed-deterministic either way.
  bool guided = false;
  // Directory of scenario JSON files replayed (sorted by filename) as
  // the initial corpus before any sampling, and — guided mode only —
  // where newly admitted entries are saved afterwards. Empty disables
  // both; the library then touches no filesystem beyond artifacts_dir.
  std::string corpus_dir;
};

struct RunRecord {
  std::uint32_t run = 0;
  std::uint64_t seed = 0;
  std::string scenario;  // Scenario::name()
  // Where the scenario came from: "sampled", "corpus" (initial replay),
  // or "mutated" (guided mode).
  std::string origin = "sampled";
  // Coverage signals first seen in this run (novelty at absorption).
  std::uint32_t new_signals = 0;
  RunOutcome outcome;
  std::string minimal_json;  // shrunken scenario (failures only)
  std::uint32_t shrink_runs = 0;
};

struct Report {
  std::uint64_t seed = 0;
  std::uint32_t runs = 0;
  std::uint32_t failures = 0;
  bool guided = false;
  // Distinct coverage signals seen after the final run, the per-run
  // growth curve (cumulative distinct signals after each run), and the
  // corpus size at the end. The E13 experiment compares the curve of
  // guided vs uniform mode over the same run budget.
  std::uint32_t coverage = 0;
  std::vector<std::uint32_t> coverage_curve;
  std::uint32_t corpus_size = 0;
  // Every distinct signal seen across the whole exploration (sorted) —
  // the --coverage-report payload.
  std::vector<std::string> signals_seen;
  std::vector<RunRecord> records;
  std::vector<std::string> artifact_files;

  // Deterministic JSON rendering (no wall-clock anywhere): identical
  // inputs produce byte-identical reports.
  std::string to_json() const;
};

class Explorer {
 public:
  explicit Explorer(ExplorerOptions options) : options_(options) {}

  // Sample + run + (on failure) shrink and dump artifacts for
  // options_.runs scenarios.
  Report explore();

  // Execute one scenario start to finish; when `trace_out` is non-null
  // the cluster's event ring buffer is dumped into it at the end.
  // Scenarios with shards > 1 run on a ShardedCluster through routing
  // clients, and the verdict is taken per shard (RunOutcome::
  // shard_verdicts) over the split history.
  RunOutcome run_scenario(const Scenario& scenario,
                          std::ostream* trace_out = nullptr);

  // Greedy shrink: returns the smallest scenario found that still
  // reproduces `failure`'s class. `runs_used` (may be null) receives the
  // number of candidate executions spent.
  Scenario shrink(const Scenario& scenario, const std::string& failure,
                  std::uint32_t* runs_used = nullptr);

  // "safety" / "liveness" — the part of the failure string before ':'.
  static std::string failure_class(const std::string& failure);

 private:
  ExplorerOptions options_;
};

}  // namespace bftbc::explore
