#include "explore/explorer.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <utility>

#include "checker/bft_linearizability.h"
#include "checker/history.h"
#include "explore/corpus.h"
#include "explore/coverage.h"
#include "faults/byzantine_client.h"
#include "faults/byzantine_replica.h"
#include "harness/cluster.h"
#include "harness/recording.h"
#include "harness/sharded_cluster.h"
#include "metrics/json.h"
#include "util/stats.h"

namespace bftbc::explore {

namespace {

// ---- coverage-signal extraction (DESIGN.md §14) ------------------------
// Signals are short strings; the CoverageMap only cares about set
// membership, so everything here must be deterministic and bounded.

// Structural knobs: which corner of the scenario cross product ran.
void scenario_signals(const Scenario& s, std::set<std::string>& sig) {
  sig.insert("mode:" + std::string(mode_name(s.mode)));
  sig.insert("f:" + std::to_string(s.f));
  if (s.shards > 1) sig.insert("sharded");
  if (s.mac_auth) sig.insert("mac");
  if (!s.crashes.empty()) sig.insert("crash");
  if (!s.partitions.empty()) sig.insert("partition");
  if (s.loss > 0) sig.insert("lossy");
  for (const AttackPlan& a : s.attacks) {
    sig.insert("atk:" + std::string(attack_name(a.kind)));
    if (a.collusion_group != 0) sig.insert("collude");
  }
  for (const ByzReplicaSlot& b : s.byz_replicas) {
    sig.insert("byz:" + std::string(species_name(b.species)));
  }
}

// Counter branches: which certificate paths, drop verdicts, GC/eviction
// events, and state-transfer machinery fired at all. The name universe
// is the replica/attacker counter vocabulary — closed and small.
void counter_signals(const Counters& counters, const char* prefix,
                     std::set<std::string>& sig) {
  for (const auto& [name, value] : counters.all()) {
    if (value > 0) sig.insert(prefix + name);
  }
}

// Checker-derived signals: lurking counts and the near-miss brinks.
void checker_signals(const checker::CheckResult& check, const Scenario& s,
                     std::set<std::string>& sig) {
  const checker::CheckResult::NearMiss nm = check.near_misses(s.max_b(), 2);
  if (nm.at_lurking_bound > 0) sig.insert("nm:lurk_at_bound");
  if (nm.near_lurking_bound > 0) sig.insert("nm:lurk_near_bound");
  if (nm.at_masking_bound > 0) sig.insert("nm:mask_at_bound");
  sig.insert("lurk:" + std::to_string(check.max_lurking()));
}

// Conjunction signals: structural knob × behavioral event. The marginal
// signals above saturate within a few hundred uniform runs; the product
// lattice does not — "optimized-mode run that recovered a crashed
// replica while a collusion group was lurking" is a corner uniform
// sampling rarely lands on, and exactly the kind mutation reaches by
// perturbing one dimension of a corpus entry at a time. Call after every
// marginal signal has been inserted.
void compound_signals(const Scenario& s, std::set<std::string>& sig) {
  std::vector<std::string> left;
  left.push_back("mode:" + std::string(mode_name(s.mode)));
  left.push_back("f:" + std::to_string(s.f));
  if (s.shards > 1) left.push_back("sharded");
  if (s.mac_auth) left.push_back("mac");
  static const char* const kInteresting[] = {
      "crash",          "collude",          "partition",
      "lossy",          "atk:vacuous",      "atk:equivocate",
      "atk:partial_write", "atk:timestamp_hog", "atk:lurking_stash",
      "nm:lurk_at_bound", "nm:lurk_near_bound", "nm:mask_at_bound",
      "r:opt_tiebreak_overwrite", "r:gc_reclaimed", "r:objects_evicted",
      "r:state_recovered_objects", "r:drop_plist_conflict",
      "r:drop_recovering"};
  std::vector<std::string> right;
  for (const char* tag : kInteresting) {
    if (sig.count(tag) != 0) right.push_back(tag);
  }
  for (const std::string& l : left) {
    for (const std::string& r : right) sig.insert("x:" + l + "+" + r);
  }
}

template <typename T>
harness::ReplicaFactory byz_factory() {
  return [](const quorum::QuorumConfig& config, quorum::ReplicaId id,
            crypto::Keystore& keystore, rpc::Transport& transport,
            sim::Simulator& simulator,
            const core::ReplicaOptions& opts) -> std::unique_ptr<core::Replica> {
    return std::make_unique<T>(config, id, keystore, transport, simulator,
                               opts);
  };
}

harness::ReplicaFactory make_factory(ByzSpecies species) {
  switch (species) {
    case ByzSpecies::kSilent:
      return byz_factory<faults::SilentReplica>();
    case ByzSpecies::kStale:
      return byz_factory<faults::StaleReplica>();
    case ByzSpecies::kGarbageSig:
      return byz_factory<faults::GarbageSigReplica>();
    case ByzSpecies::kEquivocSign:
      return byz_factory<faults::EquivocSignReplica>();
    case ByzSpecies::kFlipValue:
      return byz_factory<faults::FlipValueReplica>();
  }
  return byz_factory<faults::SilentReplica>();
}

// One workload client mid-flight: its plan, harness client, private rng,
// and the number of ops it will actually issue (shorter when the plan
// stops it mid-run).
struct WorkloadClient {
  const ClientPlan* plan = nullptr;
  core::Client* client = nullptr;
  Rng rng;
  std::uint32_t target = 0;
  // An op of this client timed out: its write may still be in flight, so
  // the client cannot be certified quiescent and must not be stopped.
  bool aborted = false;
};

// Multi-shard execution: the same scenario phases, but clients go through
// shard::RoutingClient over a ShardedCluster and the final verdict is
// taken per shard over the split history. Attacks aim at the shard that
// owns their object (its replica group, its keystore); Byzantine slots
// and partition windows apply to the same in-group slot in every shard.
RunOutcome run_sharded_scenario(const Scenario& s, std::ostream* trace_out) {
  RunOutcome out;

  harness::ShardedClusterOptions copts;
  copts.shards = s.shards;
  copts.f = s.f;
  copts.optimized = s.mode == Mode::kOptimized;
  copts.strong = s.mode == Mode::kStrong;
  copts.mac_auth = s.mac_auth;
  copts.seed = s.seed;
  copts.link.loss_probability = s.loss;
  copts.link.duplicate_probability = s.dup;
  copts.link.corrupt_probability = s.corrupt;
  copts.link.base_delay = s.base_delay;
  copts.link.jitter_mean = s.jitter_mean;
  std::set<std::uint32_t> byz_slots;
  for (const ByzReplicaSlot& b : s.byz_replicas) {
    if (s.enforce_fault_budget && byz_slots.size() >= s.f) break;
    if (b.slot >= s.n()) continue;
    copts.replica_factories[b.slot] = make_factory(b.species);
    byz_slots.insert(b.slot);
  }

  harness::ShardedCluster cluster(copts);
  checker::History history;

  auto fail = [&out](std::string msg) {
    if (out.failure.empty()) out.failure = std::move(msg);
  };
  auto rec_write = [&](shard::RoutingClient& c, quorum::ClientId id,
                       quorum::ObjectId object, Bytes value) {
    const std::size_t token =
        history.begin_write(id, object, cluster.sim().now(), value);
    auto result = cluster.write(c, object, std::move(value));
    if (result.is_ok()) {
      history.end_write(token, cluster.sim().now(), result.value().ts);
    } else {
      history.abort(token);
    }
    return result;
  };
  auto rec_read = [&](shard::RoutingClient& c, quorum::ClientId id,
                      quorum::ObjectId object) {
    const std::size_t token =
        history.begin_read(id, object, cluster.sim().now());
    auto result = cluster.read(c, object);
    if (result.is_ok()) {
      history.end_read(token, cluster.sim().now(), result.value().ts,
                       result.value().hash, result.value().value);
    } else {
      history.abort(token);
    }
    return result;
  };
  auto rec_stop = [&](quorum::ClientId id) {
    cluster.stop_client(id);
    history.record_stop(id, cluster.sim().now());
  };

  // --- Phase A: the probe client seeds every object. -------------------
  shard::RoutingClient& probe = cluster.add_client(kProbeClient);
  for (quorum::ObjectId obj = 1; obj <= s.objects; ++obj) {
    auto seeded = rec_write(probe, kProbeClient, obj,
                            to_bytes("seed-" + std::to_string(obj)));
    if (!seeded.is_ok() && s.within_fault_budget()) {
      fail("liveness: seed write failed on object " + std::to_string(obj));
    }
  }

  // --- Phase B: attack actors, each aimed at its object's shard. --------
  std::vector<std::unique_ptr<rpc::Transport>> attack_transports;
  std::vector<std::unique_ptr<faults::AttackClientBase>> attackers;
  std::vector<char> attack_done(s.attacks.size(), 0);
  std::vector<std::vector<rpc::Envelope>> stashes(s.attacks.size());

  for (std::size_t i = 0; i < s.attacks.size(); ++i) {
    const AttackPlan plan = s.attacks[i];
    const std::uint32_t home = cluster.shard_of(plan.object);
    attack_transports.push_back(cluster.make_transport(
        harness::shard_client_node(home, plan.id)));
    rpc::Transport& transport = *attack_transports.back();
    crypto::Keystore& keystore = cluster.keystore(home);
    const std::vector<sim::NodeId> targets = cluster.replica_nodes(home);
    const sim::Time start =
        (10 + 15 * static_cast<sim::Time>(i)) * sim::kMillisecond;
    switch (plan.kind) {
      case AttackKind::kEquivocate: {
        auto actor = std::make_unique<faults::EquivocatorClient>(
            cluster.config(), plan.id, keystore, transport, cluster.sim(),
            targets, cluster.rng().split());
        actor->set_mac_auth(s.mac_auth);
        faults::EquivocatorClient* ap = actor.get();
        attackers.push_back(std::move(actor));
        cluster.sim().schedule(start, [ap, plan, i, &attack_done] {
          ap->attack(plan.object, to_bytes("equiv-a"), to_bytes("equiv-b"),
                     [i, &attack_done](faults::EquivocatorClient::Outcome) {
                       attack_done[i] = 1;
                     });
        });
        break;
      }
      case AttackKind::kPartialWrite: {
        auto actor = std::make_unique<faults::PartialWriter>(
            cluster.config(), plan.id, keystore, transport, cluster.sim(),
            targets, cluster.rng().split());
        actor->set_mac_auth(s.mac_auth);
        faults::PartialWriter* ap = actor.get();
        attackers.push_back(std::move(actor));
        cluster.sim().schedule(start, [ap, plan, i, &attack_done] {
          ap->attack(plan.object, to_bytes("partial"),
                     [i, &attack_done](bool) { attack_done[i] = 1; });
        });
        break;
      }
      case AttackKind::kTimestampHog: {
        auto actor = std::make_unique<faults::TimestampHog>(
            cluster.config(), plan.id, keystore, transport, cluster.sim(),
            targets, cluster.rng().split());
        actor->set_mac_auth(s.mac_auth);
        faults::TimestampHog* ap = actor.get();
        attackers.push_back(std::move(actor));
        cluster.sim().schedule(start, [ap, plan, i, &attack_done] {
          ap->attack(plan.object, 1'000'000, static_cast<int>(plan.goal),
                     [i, &attack_done](faults::TimestampHog::Outcome) {
                       attack_done[i] = 1;
                     });
        });
        break;
      }
      case AttackKind::kLurkingStash: {
        auto actor = std::make_unique<faults::LurkingWriteStasher>(
            cluster.config(), plan.id, keystore, transport, cluster.sim(),
            targets, cluster.rng().split());
        actor->set_mac_auth(s.mac_auth);
        faults::LurkingWriteStasher* ap = actor.get();
        attackers.push_back(std::move(actor));
        auto on_done = [i, plan, &attack_done, &stashes,
                        &rec_stop](faults::LurkingWriteStasher::Outcome o) {
          stashes[i] = std::move(o.stashed);
          rec_stop(plan.id);
          attack_done[i] = 1;
        };
        if (s.mode == Mode::kStrong) {
          quorum::ReplicaId correct = 0;
          for (quorum::ReplicaId r = 0; r < s.n(); ++r) {
            if (byz_slots.count(r) == 0) {
              correct = r;
              break;
            }
          }
          cluster.sim().schedule(start, [ap, plan, home, correct, &cluster,
                                         on_done] {
            core::PrepareCertificate just =
                core::PrepareCertificate::genesis(plan.object);
            const auto* state =
                cluster.replica(home, correct).find_object(plan.object);
            if (state != nullptr) just = state->pcert();
            std::optional<core::WriteCertificate> wcert =
                cluster.client_leg(kProbeClient, home)
                    .last_write_cert(plan.object);
            ap->attack_chained(plan.object, std::move(just), std::move(wcert),
                               static_cast<int>(plan.goal), on_done);
          });
        } else {
          const bool optlist = s.mode == Mode::kOptimized;
          cluster.sim().schedule(start, [ap, plan, optlist, on_done] {
            ap->attack(plan.object, static_cast<int>(plan.goal), optlist,
                       on_done);
          });
        }
        break;
      }
    }
  }

  // --- Phase C: correct-client workload through the routers. ------------
  struct ShardedWorkloadClient {
    const ClientPlan* plan = nullptr;
    shard::RoutingClient* client = nullptr;
    Rng rng;
    std::uint32_t target = 0;
    bool aborted = false;
  };
  std::vector<ShardedWorkloadClient> workload;
  workload.reserve(s.clients.size());
  int completed_ops = 0;
  int failed_ops = 0;
  int expected_ops = 0;
  for (const ClientPlan& plan : s.clients) {
    core::ClientOptions client_opts;
    shard::RoutingClientOptions routing;
    if (plan.pipelined) {
      client_opts.max_inflight = plan.window;
      // The cross-shard window rides on top of the per-shard one.
      routing.max_inflight_total = plan.window;
    }
    shard::RoutingClient& c = cluster.add_client(plan.id, client_opts, routing);
    std::uint32_t target = plan.ops;
    if (!plan.pipelined && plan.stop_after_ops > 0 &&
        plan.stop_after_ops < plan.ops) {
      target = plan.stop_after_ops;
    }
    workload.push_back({&plan, &c, cluster.rng().split(), target});
    expected_ops += static_cast<int>(target);
  }

  std::function<void(std::size_t, std::uint32_t)> step =
      [&](std::size_t ci, std::uint32_t op) {
        ShardedWorkloadClient& wc = workload[ci];
        if (op >= wc.target) {
          if (wc.target < wc.plan->ops && !wc.aborted) {
            const quorum::ClientId id = wc.plan->id;
            cluster.sim().schedule(sim::kMillisecond,
                                   [&rec_stop, id] { rec_stop(id); });
          }
          return;
        }
        const quorum::ObjectId object =
            1 + static_cast<quorum::ObjectId>(wc.rng.next_below(s.objects));
        if (wc.rng.next_bool(wc.plan->write_ratio)) {
          const Bytes value = to_bytes("c" + std::to_string(wc.plan->id) +
                                       "-w" + std::to_string(op));
          const std::size_t token = history.begin_write(
              wc.plan->id, object, cluster.sim().now(), value);
          wc.client->write(
              object, value,
              [&, ci, op, token](Result<core::Client::WriteResult> r) {
                if (r.is_ok()) {
                  history.end_write(token, cluster.sim().now(), r.value().ts);
                  ++completed_ops;
                } else {
                  history.abort(token);
                  ++failed_ops;
                  workload[ci].aborted = true;
                }
                step(ci, op + 1);
              });
        } else {
          const std::size_t token =
              history.begin_read(wc.plan->id, object, cluster.sim().now());
          wc.client->read(
              object, [&, ci, op, token](Result<core::Client::ReadResult> r) {
                if (r.is_ok()) {
                  history.end_read(token, cluster.sim().now(), r.value().ts,
                                   r.value().hash, r.value().value);
                  ++completed_ops;
                } else {
                  history.abort(token);
                  ++failed_ops;
                  workload[ci].aborted = true;
                }
                step(ci, op + 1);
              });
        }
      };

  for (std::size_t ci = 0; ci < workload.size(); ++ci) {
    ShardedWorkloadClient& wc = workload[ci];
    if (!wc.plan->pipelined) {
      step(ci, 0);
      continue;
    }
    for (std::uint32_t op = 0; op < wc.target; ++op) {
      const quorum::ObjectId object =
          1 + static_cast<quorum::ObjectId>(wc.rng.next_below(s.objects));
      const Bytes value = to_bytes("c" + std::to_string(wc.plan->id) + "-p" +
                                   std::to_string(op));
      const std::size_t token =
          history.begin_write(wc.plan->id, object, cluster.sim().now(), value);
      wc.client->submit_write(object, value,
                              [&, token](Result<core::Client::WriteResult> r) {
                                if (r.is_ok()) {
                                  history.end_write(token, cluster.sim().now(),
                                                    r.value().ts);
                                  ++completed_ops;
                                } else {
                                  history.abort(token);
                                  ++failed_ops;
                                }
                              });
    }
  }

  // --- Phase D: partition windows — the slot across every shard. --------
  std::vector<quorum::ClientId> party_ids;
  party_ids.push_back(kProbeClient);
  for (const ClientPlan& plan : s.clients) party_ids.push_back(plan.id);
  for (const AttackPlan& plan : s.attacks) party_ids.push_back(plan.id);
  std::vector<sim::NodeId> party_nodes;
  for (std::uint32_t sh = 0; sh < s.shards; ++sh) {
    for (quorum::ClientId id : party_ids) {
      party_nodes.push_back(harness::shard_client_node(sh, id));
    }
  }
  for (const PartitionPlan& p : s.partitions) {
    if (p.replica >= s.n()) continue;
    cluster.sim().schedule(p.at, [&cluster, &party_nodes, p, shards = s.shards] {
      for (std::uint32_t sh = 0; sh < shards; ++sh) {
        const sim::NodeId node = harness::shard_replica_node(sh, p.replica);
        for (sim::NodeId peer : party_nodes) cluster.net().partition(node, peer);
      }
    });
    cluster.sim().schedule(p.heal_at, [&cluster, &party_nodes, p,
                                       shards = s.shards] {
      for (std::uint32_t sh = 0; sh < shards; ++sh) {
        const sim::NodeId node = harness::shard_replica_node(sh, p.replica);
        for (sim::NodeId peer : party_nodes) cluster.net().heal(node, peer);
      }
    });
  }

  // --- Phase D': crash/restart schedule — the slot in every group. ------
  // Outlives the scheduled restart closures below.
  std::vector<quorum::ObjectId> all_objects;
  for (quorum::ObjectId obj = 1; obj <= s.objects; ++obj) {
    all_objects.push_back(obj);
  }
  for (const CrashPlan& c : s.crashes) {
    if (c.replica >= s.n()) continue;
    history.record_crash(c.replica, c.at, c.restart_at);
    cluster.sim().schedule(c.at, [&cluster, c, shards = s.shards] {
      for (std::uint32_t sh = 0; sh < shards; ++sh) {
        cluster.crash_replica(sh, static_cast<quorum::ReplicaId>(c.replica));
      }
    });
    if (c.restart_at != 0) {
      // restart_replica filters to the shard's owned objects itself.
      cluster.sim().schedule(
          c.restart_at, [&cluster, c, shards = s.shards, &all_objects] {
            for (std::uint32_t sh = 0; sh < shards; ++sh) {
              cluster.restart_replica(
                  sh, static_cast<quorum::ReplicaId>(c.replica), all_objects);
            }
          });
    }
  }

  // --- Phase E: run to quiescence (bounded). ----------------------------
  const bool finished = cluster.run_until(
      [&] {
        if (completed_ops + failed_ops < expected_ops) return false;
        for (char done : attack_done) {
          if (!done) return false;
        }
        return true;
      },
      20'000'000);
  out.completed = finished;
  if (!finished && s.within_fault_budget()) {
    fail("liveness: workload/attacks did not quiesce within the event budget");
  }
  if (failed_ops > 0 && s.within_fault_budget() && s.partitions.empty()) {
    fail("liveness: " + std::to_string(failed_ops) +
         " correct-client operation(s) failed");
  }

  if (finished) {
    cluster.net().heal_all();
    cluster.settle();

    // --- Phase F: staged colluder replay into the owning shard. ---------
    // Grouped attacks are pooled below; independent ones replay here.
    for (std::size_t i = 0; i < s.attacks.size(); ++i) {
      const AttackPlan plan = s.attacks[i];
      if (plan.kind != AttackKind::kLurkingStash || !plan.collude_replay ||
          plan.collusion_group != 0) {
        continue;
      }
      const std::uint32_t home = cluster.shard_of(plan.object);
      auto colluder_transport = cluster.make_transport(
          harness::shard_client_node(
              home, kColluderNodeBase + static_cast<quorum::ClientId>(i)));
      for (rpc::Envelope& env : stashes[i]) {
        faults::Colluder colluder(*colluder_transport,
                                  cluster.replica_nodes(home));
        colluder.stash(env);
        colluder.unleash(2);
        cluster.settle();
        auto probed = rec_read(probe, kProbeClient, plan.object);
        if (!probed.is_ok() && s.within_fault_budget()) {
          fail("liveness: probe read failed during colluder replay");
        }
      }
    }

    // Collusion groups: every member's stash pools into ONE colluder and
    // replays only now — after all members stopped (quiescence implies
    // it). The bound must hold per stopped client even for jointly
    // planned writes.
    std::map<std::uint32_t, std::vector<std::size_t>> collusion_groups;
    for (std::size_t i = 0; i < s.attacks.size(); ++i) {
      const AttackPlan& plan = s.attacks[i];
      if (plan.kind == AttackKind::kLurkingStash && plan.collusion_group != 0)
        collusion_groups[plan.collusion_group].push_back(i);
    }
    for (const auto& [gid, members] : collusion_groups) {
      const quorum::ObjectId target = s.attacks[members.front()].object;
      const std::uint32_t home = cluster.shard_of(target);
      auto colluder_transport = cluster.make_transport(
          harness::shard_client_node(
              home, kColluderNodeBase + 100 +
                        static_cast<quorum::ClientId>(gid)));
      for (std::size_t i : members) {
        for (rpc::Envelope& env : stashes[i]) {
          faults::Colluder colluder(*colluder_transport,
                                    cluster.replica_nodes(home));
          colluder.stash(env);
          colluder.unleash(2);
          cluster.settle();
          auto probed = rec_read(probe, kProbeClient, target);
          if (!probed.is_ok() && s.within_fault_budget()) {
            fail("liveness: probe read failed during colluder replay");
          }
        }
      }
    }

    // --- Phase G: final quiescent reads over every object. --------------
    for (quorum::ObjectId obj = 1; obj <= s.objects; ++obj) {
      auto final_read = rec_read(probe, kProbeClient, obj);
      if (!final_read.is_ok() && s.within_fault_budget()) {
        fail("liveness: final read failed on object " + std::to_string(obj));
      }
    }
  }

  // --- Coverage extraction (the fleet is still alive). ------------------
  std::set<std::string> sig;
  scenario_signals(s, sig);
  std::size_t plist_max = 0;
  std::size_t optlist_max = 0;
  for (std::uint32_t sh = 0; sh < s.shards; ++sh) {
    for (quorum::ReplicaId r = 0; r < s.n(); ++r) {
      core::Replica& rep = cluster.replica(sh, r);
      counter_signals(rep.metrics(), "r:", sig);
      for (quorum::ObjectId obj = 1; obj <= s.objects; ++obj) {
        const core::ObjectState* state = rep.find_object(obj);
        if (state == nullptr) continue;
        plist_max = std::max(plist_max, state->plist().size());
        optlist_max = std::max(optlist_max, state->optlist().size());
      }
    }
  }
  sig.insert("plist:" + std::to_string(log2_bucket(plist_max)));
  if (s.mode == Mode::kOptimized) {
    sig.insert("optlist:" + std::to_string(log2_bucket(optlist_max)));
  }
  for (const auto& attacker : attackers) {
    counter_signals(attacker->metrics(), "a:", sig);
    if (attacker->metrics().get("pmax_unreachable") > 0) {
      ++out.vacuous_attacks;
    }
  }
  if (out.vacuous_attacks > 0) sig.insert("atk:vacuous");

  // --- Verdict: split the history and check each shard on its own. ------
  std::set<checker::ClientId> bad_clients;
  for (const AttackPlan& plan : s.attacks) bad_clients.insert(plan.id);
  const shard::ShardMap& map = cluster.map();
  const std::vector<checker::History> parts = checker::split_history(
      history, s.shards,
      [&map](checker::ObjectId object) { return map.shard_of(object); });
  out.safety_ok = true;
  for (std::uint32_t sh = 0; sh < s.shards; ++sh) {
    const checker::CheckResult check =
        checker::check_bft_linearizability(parts[sh], bad_clients);
    out.max_lurking = std::max(out.max_lurking, check.max_lurking());
    checker_signals(check, s, sig);
    const bool ok = s.mode == Mode::kStrong ? check.ok_plus(s.max_b(), 2)
                                            : check.ok(s.max_b());
    out.shard_verdicts.push_back(ok ? "ok" : check.summary());
    sig.insert("shard" + std::to_string(sh) + (ok ? ":ok" : ":fail"));
    if (!ok && out.safety_ok) {
      out.safety_ok = false;
      out.failure =
          "safety: shard " + std::to_string(sh) + ": " + check.summary();
    }
  }

  out.events = cluster.sim().executed_events();
  out.history_ops = history.completed_count();
  out.ops_spanning_crashes = history.ops_spanning_crashes();
  if (!s.crashes.empty()) {
    sig.insert("xcrash:" +
               std::to_string(log2_bucket(out.ops_spanning_crashes)));
  }
  compound_signals(s, sig);
  sig.insert(out.failure.empty()
                 ? "verdict:ok"
                 : "verdict:" + Explorer::failure_class(out.failure));
  out.signals.assign(sig.begin(), sig.end());
  if (trace_out != nullptr) {
    *trace_out << "(multi-shard scenario: event-ring tracing not captured)\n";
  }
  return out;
}

}  // namespace

std::string Explorer::failure_class(const std::string& failure) {
  const std::size_t colon = failure.find(':');
  return colon == std::string::npos ? failure : failure.substr(0, colon);
}

RunOutcome Explorer::run_scenario(const Scenario& s, std::ostream* trace_out) {
  if (s.shards > 1) return run_sharded_scenario(s, trace_out);
  RunOutcome out;

  harness::ClusterOptions copts;
  copts.f = s.f;
  copts.optimized = s.mode == Mode::kOptimized;
  copts.strong = s.mode == Mode::kStrong;
  copts.mac_auth = s.mac_auth;
  copts.seed = s.seed;
  copts.link.loss_probability = s.loss;
  copts.link.duplicate_probability = s.dup;
  copts.link.corrupt_probability = s.corrupt;
  copts.link.base_delay = s.base_delay;
  copts.link.jitter_mean = s.jitter_mean;
  // Install Byzantine replicas. Within the fault budget at most f slots
  // are filled; enforce_fault_budget=false is the deliberately-weakened
  // configuration (the explorer's own canary) and installs them all.
  std::set<std::uint32_t> byz_slots;
  for (const ByzReplicaSlot& b : s.byz_replicas) {
    if (s.enforce_fault_budget && byz_slots.size() >= s.f) break;
    if (b.slot >= s.n()) continue;
    copts.replica_factories[b.slot] = make_factory(b.species);
    byz_slots.insert(b.slot);
  }

  harness::Cluster cluster(copts);
  checker::History history;
  harness::Recorder rec(cluster, history);

  // Liveness failures accumulate first-wins; a safety failure recorded at
  // the end overrides (it is the headline, and the class shrinking must
  // preserve).
  auto fail = [&out](std::string msg) {
    if (out.failure.empty()) out.failure = std::move(msg);
  };

  // --- Phase A: the probe client seeds every object. -------------------
  core::Client& probe = cluster.add_client(kProbeClient);
  for (quorum::ObjectId obj = 1; obj <= s.objects; ++obj) {
    auto seeded = rec.write(probe, obj, to_bytes("seed-" + std::to_string(obj)));
    if (!seeded.is_ok() && s.within_fault_budget()) {
      fail("liveness: seed write failed on object " + std::to_string(obj));
    }
  }

  // --- Phase B: construct attack actors and schedule their attacks. ----
  std::vector<std::unique_ptr<rpc::Transport>> attack_transports;
  std::vector<std::unique_ptr<faults::AttackClientBase>> attackers;
  std::vector<char> attack_done(s.attacks.size(), 0);
  std::vector<std::vector<rpc::Envelope>> stashes(s.attacks.size());

  for (std::size_t i = 0; i < s.attacks.size(); ++i) {
    const AttackPlan plan = s.attacks[i];
    attack_transports.push_back(
        cluster.make_transport(harness::client_node(plan.id)));
    rpc::Transport& transport = *attack_transports.back();
    const sim::Time start = (10 + 15 * static_cast<sim::Time>(i)) *
                            sim::kMillisecond;
    switch (plan.kind) {
      case AttackKind::kEquivocate: {
        auto actor = std::make_unique<faults::EquivocatorClient>(
            cluster.config(), plan.id, cluster.keystore(), transport,
            cluster.sim(), cluster.replica_nodes(), cluster.rng().split());
        actor->set_mac_auth(s.mac_auth);
        faults::EquivocatorClient* ap = actor.get();
        attackers.push_back(std::move(actor));
        cluster.sim().schedule(start, [ap, plan, i, &attack_done] {
          ap->attack(plan.object, to_bytes("equiv-a"), to_bytes("equiv-b"),
                     [i, &attack_done](faults::EquivocatorClient::Outcome) {
                       attack_done[i] = 1;
                     });
        });
        break;
      }
      case AttackKind::kPartialWrite: {
        auto actor = std::make_unique<faults::PartialWriter>(
            cluster.config(), plan.id, cluster.keystore(), transport,
            cluster.sim(), cluster.replica_nodes(), cluster.rng().split());
        actor->set_mac_auth(s.mac_auth);
        faults::PartialWriter* ap = actor.get();
        attackers.push_back(std::move(actor));
        cluster.sim().schedule(start, [ap, plan, i, &attack_done] {
          ap->attack(plan.object, to_bytes("partial"),
                     [i, &attack_done](bool) { attack_done[i] = 1; });
        });
        break;
      }
      case AttackKind::kTimestampHog: {
        auto actor = std::make_unique<faults::TimestampHog>(
            cluster.config(), plan.id, cluster.keystore(), transport,
            cluster.sim(), cluster.replica_nodes(), cluster.rng().split());
        actor->set_mac_auth(s.mac_auth);
        faults::TimestampHog* ap = actor.get();
        attackers.push_back(std::move(actor));
        cluster.sim().schedule(start, [ap, plan, i, &attack_done] {
          ap->attack(plan.object, 1'000'000,
                     static_cast<int>(plan.goal),
                     [i, &attack_done](faults::TimestampHog::Outcome) {
                       attack_done[i] = 1;
                     });
        });
        break;
      }
      case AttackKind::kLurkingStash: {
        auto actor = std::make_unique<faults::LurkingWriteStasher>(
            cluster.config(), plan.id, cluster.keystore(), transport,
            cluster.sim(), cluster.replica_nodes(), cluster.rng().split());
        actor->set_mac_auth(s.mac_auth);
        faults::LurkingWriteStasher* ap = actor.get();
        attackers.push_back(std::move(actor));
        auto on_done = [i, plan, &attack_done, &stashes,
                        &rec](faults::LurkingWriteStasher::Outcome o) {
          stashes[i] = std::move(o.stashed);
          // The paper's stop: key revoked, event in the history. Whatever
          // was stashed before this instant may legally lurk — but only
          // up to the mode bound.
          rec.stop_client(plan.id);
          attack_done[i] = 1;
        };
        if (s.mode == Mode::kStrong) {
          // Strong-mode prepares must justify against the predecessor's
          // write certificate; anchor on the probe's seed write. Resolve
          // the certificates at fire time, not scheduling time.
          quorum::ReplicaId correct = 0;
          for (quorum::ReplicaId r = 0; r < s.n(); ++r) {
            if (byz_slots.count(r) == 0) {
              correct = r;
              break;
            }
          }
          cluster.sim().schedule(start, [ap, plan, correct, &cluster, &probe,
                                         on_done] {
            core::PrepareCertificate just =
                core::PrepareCertificate::genesis(plan.object);
            const auto* state = cluster.replica(correct).find_object(plan.object);
            if (state != nullptr) just = state->pcert();
            std::optional<core::WriteCertificate> wcert =
                probe.last_write_cert(plan.object);
            ap->attack_chained(plan.object, std::move(just), std::move(wcert),
                               static_cast<int>(plan.goal), on_done);
          });
        } else {
          const bool optlist = s.mode == Mode::kOptimized;
          cluster.sim().schedule(start, [ap, plan, optlist, on_done] {
            ap->attack(plan.object, static_cast<int>(plan.goal), optlist,
                       on_done);
          });
        }
        break;
      }
    }
  }

  // --- Phase C: correct-client workload. --------------------------------
  std::vector<WorkloadClient> workload;
  workload.reserve(s.clients.size());
  int completed_ops = 0;
  int failed_ops = 0;
  int expected_ops = 0;
  for (const ClientPlan& plan : s.clients) {
    core::ClientOptions client_opts;
    // The two-argument add_client does NOT inherit the cluster's mode
    // flags; set them explicitly or the client would speak base protocol
    // at optimized/strong replicas.
    client_opts.optimized = copts.optimized;
    client_opts.strong = copts.strong;
    client_opts.mac_auth = copts.mac_auth;
    if (plan.pipelined) client_opts.max_inflight = plan.window;
    core::Client& c = cluster.add_client(plan.id, client_opts);
    std::uint32_t target = plan.ops;
    if (!plan.pipelined && plan.stop_after_ops > 0 &&
        plan.stop_after_ops < plan.ops) {
      target = plan.stop_after_ops;
    }
    workload.push_back({&plan, &c, cluster.rng().split(), target});
    expected_ops += static_cast<int>(target);
  }

  // Sequential clients run op k+1 from op k's completion callback, so a
  // mid-run stop always lands between operations — never across one.
  std::function<void(std::size_t, std::uint32_t)> step =
      [&](std::size_t ci, std::uint32_t op) {
        WorkloadClient& wc = workload[ci];
        if (op >= wc.target) {
          // The administrator's stop is a distinct later event, not part
          // of the final op's completion instant: defer it one tick so
          // the checker's frontier (strict responded < stop.at) includes
          // everything this client completed. A client with a timed-out
          // op is skipped — its write may still be in flight, which is a
          // legal lurking write, not the quiescent stop being modeled.
          if (wc.target < wc.plan->ops && !wc.aborted) {
            const quorum::ClientId id = wc.plan->id;
            cluster.sim().schedule(sim::kMillisecond,
                                   [&rec, id] { rec.stop_client(id); });
          }
          return;
        }
        const quorum::ObjectId object =
            1 + static_cast<quorum::ObjectId>(wc.rng.next_below(s.objects));
        if (wc.rng.next_bool(wc.plan->write_ratio)) {
          const Bytes value = to_bytes("c" + std::to_string(wc.plan->id) +
                                       "-w" + std::to_string(op));
          const std::size_t token = history.begin_write(
              wc.plan->id, object, cluster.sim().now(), value);
          wc.client->write(object, value,
                           [&, ci, op, token](Result<core::Client::WriteResult> r) {
                             if (r.is_ok()) {
                               history.end_write(token, cluster.sim().now(),
                                                 r.value().ts);
                               ++completed_ops;
                             } else {
                               history.abort(token);
                               ++failed_ops;
                               workload[ci].aborted = true;
                             }
                             step(ci, op + 1);
                           });
        } else {
          const std::size_t token =
              history.begin_read(wc.plan->id, object, cluster.sim().now());
          wc.client->read(object,
                          [&, ci, op, token](Result<core::Client::ReadResult> r) {
                            if (r.is_ok()) {
                              history.end_read(token, cluster.sim().now(),
                                               r.value().ts, r.value().hash,
                                               r.value().value);
                              ++completed_ops;
                            } else {
                              history.abort(token);
                              ++failed_ops;
                              workload[ci].aborted = true;
                            }
                            step(ci, op + 1);
                          });
        }
      };

  for (std::size_t ci = 0; ci < workload.size(); ++ci) {
    WorkloadClient& wc = workload[ci];
    if (!wc.plan->pipelined) {
      step(ci, 0);
      continue;
    }
    // Pipelined clients queue their whole write burst up front; the
    // client's FIFO per-object pipeline bounds the in-flight window.
    for (std::uint32_t op = 0; op < wc.target; ++op) {
      const quorum::ObjectId object =
          1 + static_cast<quorum::ObjectId>(wc.rng.next_below(s.objects));
      const Bytes value = to_bytes("c" + std::to_string(wc.plan->id) + "-p" +
                                   std::to_string(op));
      const std::size_t token =
          history.begin_write(wc.plan->id, object, cluster.sim().now(), value);
      wc.client->submit_write(object, value,
                              [&, token](Result<core::Client::WriteResult> r) {
                                if (r.is_ok()) {
                                  history.end_write(token, cluster.sim().now(),
                                                    r.value().ts);
                                  ++completed_ops;
                                } else {
                                  history.abort(token);
                                  ++failed_ops;
                                }
                              });
    }
  }

  // --- Phase D: partition windows (delays relative to workload start). --
  std::vector<sim::NodeId> party_nodes;
  party_nodes.push_back(harness::client_node(kProbeClient));
  for (const ClientPlan& plan : s.clients)
    party_nodes.push_back(harness::client_node(plan.id));
  for (const AttackPlan& plan : s.attacks)
    party_nodes.push_back(harness::client_node(plan.id));
  for (const PartitionPlan& p : s.partitions) {
    if (p.replica >= s.n()) continue;
    cluster.sim().schedule(p.at, [&cluster, &party_nodes, p] {
      for (sim::NodeId node : party_nodes) cluster.net().partition(p.replica, node);
    });
    cluster.sim().schedule(p.heal_at, [&cluster, &party_nodes, p] {
      for (sim::NodeId node : party_nodes) cluster.net().heal(p.replica, node);
    });
  }

  // --- Phase D': crash/restart schedule. --------------------------------
  // The crash cuts the replica off; the restart destroys it (true state
  // loss), rebuilds it through the factory hook, and recovers its
  // ObjectStates via STATE-XFER from the surviving quorum. Recovery is
  // asynchronous — it completes during the remaining workload or the
  // post-quiescence settle. Outlives the scheduled closures below.
  std::vector<quorum::ObjectId> all_objects;
  for (quorum::ObjectId obj = 1; obj <= s.objects; ++obj) {
    all_objects.push_back(obj);
  }
  for (const CrashPlan& c : s.crashes) {
    if (c.replica >= s.n()) continue;
    history.record_crash(c.replica, c.at, c.restart_at);
    cluster.sim().schedule(c.at, [&cluster, c] {
      cluster.crash_replica(static_cast<quorum::ReplicaId>(c.replica));
    });
    if (c.restart_at != 0) {
      cluster.sim().schedule(c.restart_at, [&cluster, c, &all_objects] {
        cluster.restart_replica(static_cast<quorum::ReplicaId>(c.replica),
                                all_objects);
      });
    }
  }

  // --- Phase E: run to quiescence (bounded). ----------------------------
  const bool finished = cluster.run_until(
      [&] {
        if (completed_ops + failed_ops < expected_ops) return false;
        for (char done : attack_done) {
          if (!done) return false;
        }
        return true;
      },
      20'000'000);
  out.completed = finished;
  if (!finished && s.within_fault_budget()) {
    fail("liveness: workload/attacks did not quiesce within the event budget");
  }
  if (failed_ops > 0 && s.within_fault_budget() && s.partitions.empty()) {
    fail("liveness: " + std::to_string(failed_ops) +
         " correct-client operation(s) failed");
  }

  if (finished) {
    cluster.net().heal_all();
    // Drain deferred stop events (and any message tails) before the
    // replay/read phases, so every stop is recorded ahead of the reads
    // that probe for lurking writes.
    cluster.settle();

    // --- Phase F: staged colluder replay after the stop. ----------------
    // Each stashed envelope is unleashed separately with a probe read in
    // between: every lurking write the replay manages to land must
    // surface as a distinct post-stop version, which is exactly what the
    // checker's Theorem-1 frontier counts.
    for (std::size_t i = 0; i < s.attacks.size(); ++i) {
      const AttackPlan plan = s.attacks[i];
      if (plan.kind != AttackKind::kLurkingStash || !plan.collude_replay ||
          plan.collusion_group != 0) {
        continue;
      }
      auto colluder_transport = cluster.make_transport(
          harness::client_node(kColluderNodeBase + static_cast<quorum::ClientId>(i)));
      for (rpc::Envelope& env : stashes[i]) {
        faults::Colluder colluder(*colluder_transport,
                                  cluster.replica_nodes());
        colluder.stash(env);
        colluder.unleash(2);
        cluster.settle();
        auto probed = rec.read(probe, plan.object);
        if (!probed.is_ok() && s.within_fault_budget()) {
          fail("liveness: probe read failed during colluder replay");
        }
      }
    }

    // Collusion groups: the members' stashes pool into ONE colluder and
    // replay only after every member has stopped (quiescence implies
    // it) — the paper's worst case, where the lurking writes were
    // planned jointly yet the bound must hold per stopped client.
    std::map<std::uint32_t, std::vector<std::size_t>> collusion_groups;
    for (std::size_t i = 0; i < s.attacks.size(); ++i) {
      const AttackPlan& plan = s.attacks[i];
      if (plan.kind == AttackKind::kLurkingStash && plan.collusion_group != 0)
        collusion_groups[plan.collusion_group].push_back(i);
    }
    for (const auto& [gid, members] : collusion_groups) {
      const quorum::ObjectId target = s.attacks[members.front()].object;
      auto colluder_transport = cluster.make_transport(harness::client_node(
          kColluderNodeBase + 100 + static_cast<quorum::ClientId>(gid)));
      for (std::size_t i : members) {
        for (rpc::Envelope& env : stashes[i]) {
          faults::Colluder colluder(*colluder_transport,
                                    cluster.replica_nodes());
          colluder.stash(env);
          colluder.unleash(2);
          cluster.settle();
          auto probed = rec.read(probe, target);
          if (!probed.is_ok() && s.within_fault_budget()) {
            fail("liveness: probe read failed during colluder replay");
          }
        }
      }
    }

    // --- Phase G: final quiescent reads over every object. --------------
    for (quorum::ObjectId obj = 1; obj <= s.objects; ++obj) {
      auto final_read = rec.read(probe, obj);
      if (!final_read.is_ok() && s.within_fault_budget()) {
        fail("liveness: final read failed on object " + std::to_string(obj));
      }
    }
  }

  // --- Coverage extraction (the cluster is still alive). ----------------
  std::set<std::string> sig;
  scenario_signals(s, sig);
  std::size_t plist_max = 0;
  std::size_t optlist_max = 0;
  for (quorum::ReplicaId r = 0; r < s.n(); ++r) {
    core::Replica& rep = cluster.replica(r);
    counter_signals(rep.metrics(), "r:", sig);
    for (quorum::ObjectId obj = 1; obj <= s.objects; ++obj) {
      const core::ObjectState* state = rep.find_object(obj);
      if (state == nullptr) continue;
      plist_max = std::max(plist_max, state->plist().size());
      optlist_max = std::max(optlist_max, state->optlist().size());
    }
  }
  sig.insert("plist:" + std::to_string(log2_bucket(plist_max)));
  if (s.mode == Mode::kOptimized) {
    sig.insert("optlist:" + std::to_string(log2_bucket(optlist_max)));
  }
  for (const auto& attacker : attackers) {
    counter_signals(attacker->metrics(), "a:", sig);
    if (attacker->metrics().get("pmax_unreachable") > 0) {
      ++out.vacuous_attacks;
    }
  }
  if (out.vacuous_attacks > 0) sig.insert("atk:vacuous");

  // --- Verdict. ---------------------------------------------------------
  if (std::getenv("BFTBC_EXPLORE_DUMP_HISTORY") != nullptr) {
    for (const checker::Operation& op : history.operations()) {
      std::fprintf(stderr,
                   "op c=%llu obj=%llu %s inv=%llu resp=%llu ts=(%llu,%llu)\n",
                   static_cast<unsigned long long>(op.client),
                   static_cast<unsigned long long>(op.object),
                   op.kind == checker::OpKind::kWrite ? "W" : "R",
                   static_cast<unsigned long long>(op.invoked),
                   static_cast<unsigned long long>(op.responded),
                   static_cast<unsigned long long>(op.version.ts.val),
                   static_cast<unsigned long long>(op.version.ts.id));
    }
    for (const checker::StopEvent& stop : history.stops()) {
      std::fprintf(stderr, "stop c=%llu at=%llu\n",
                   static_cast<unsigned long long>(stop.client),
                   static_cast<unsigned long long>(stop.at));
    }
  }
  std::set<checker::ClientId> bad_clients;
  for (const AttackPlan& plan : s.attacks) bad_clients.insert(plan.id);
  const checker::CheckResult check =
      checker::check_bft_linearizability(history, bad_clients);
  out.max_lurking = check.max_lurking();
  checker_signals(check, s, sig);
  out.safety_ok = s.mode == Mode::kStrong ? check.ok_plus(s.max_b(), 2)
                                          : check.ok(s.max_b());
  if (!out.safety_ok) out.failure = "safety: " + check.summary();

  out.events = cluster.sim().executed_events();
  out.history_ops = history.completed_count();
  out.ops_spanning_crashes = history.ops_spanning_crashes();
  if (!s.crashes.empty()) {
    sig.insert("xcrash:" +
               std::to_string(log2_bucket(out.ops_spanning_crashes)));
  }
  compound_signals(s, sig);
  sig.insert(out.failure.empty()
                 ? "verdict:ok"
                 : "verdict:" + Explorer::failure_class(out.failure));
  out.signals.assign(sig.begin(), sig.end());
  if (trace_out != nullptr) cluster.dump_trace(*trace_out);
  return out;
}

Scenario Explorer::shrink(const Scenario& scenario, const std::string& failure,
                          std::uint32_t* runs_used) {
  Scenario best = scenario;
  const std::string cls = failure_class(failure);
  std::uint32_t used = 0;

  auto reproduces = [&](const Scenario& candidate) {
    if (used >= options_.shrink_budget) return false;
    ++used;
    const RunOutcome outcome = run_scenario(candidate);
    return outcome.failed() && failure_class(outcome.failure) == cls;
  };

  // Single greedy pass, most-structural first. Each accepted edit keeps
  // the failure class reproducing; each rejected edit is rolled back.
  for (std::size_t i = best.clients.size(); i-- > 0;) {
    Scenario candidate = best;
    candidate.clients.erase(candidate.clients.begin() +
                            static_cast<std::ptrdiff_t>(i));
    if (reproduces(candidate)) best = std::move(candidate);
  }
  for (std::size_t i = best.attacks.size(); i-- > 0;) {
    Scenario candidate = best;
    candidate.attacks.erase(candidate.attacks.begin() +
                            static_cast<std::ptrdiff_t>(i));
    if (reproduces(candidate)) best = std::move(candidate);
  }
  for (std::size_t i = best.byz_replicas.size(); i-- > 0;) {
    Scenario candidate = best;
    candidate.byz_replicas.erase(candidate.byz_replicas.begin() +
                                 static_cast<std::ptrdiff_t>(i));
    if (reproduces(candidate)) best = std::move(candidate);
  }
  for (std::size_t i = best.partitions.size(); i-- > 0;) {
    Scenario candidate = best;
    candidate.partitions.erase(candidate.partitions.begin() +
                               static_cast<std::ptrdiff_t>(i));
    if (reproduces(candidate)) best = std::move(candidate);
  }
  for (std::size_t i = best.crashes.size(); i-- > 0;) {
    Scenario candidate = best;
    candidate.crashes.erase(candidate.crashes.begin() +
                            static_cast<std::ptrdiff_t>(i));
    if (reproduces(candidate)) best = std::move(candidate);
  }
  // Ungroup collusion once — if each member replaying independently
  // still reproduces, the coordination is not load-bearing.
  {
    bool grouped = false;
    for (const AttackPlan& a : best.attacks) grouped |= a.collusion_group != 0;
    if (grouped) {
      Scenario candidate = best;
      for (AttackPlan& a : candidate.attacks) a.collusion_group = 0;
      if (reproduces(candidate)) best = std::move(candidate);
    }
  }
  // Halve durations (op counts, stash goals) while it still reproduces.
  while (true) {
    Scenario candidate = best;
    bool any = false;
    for (ClientPlan& plan : candidate.clients) {
      if (plan.ops > 1) {
        plan.ops /= 2;
        if (plan.stop_after_ops >= plan.ops) plan.stop_after_ops = 0;
        any = true;
      }
    }
    for (AttackPlan& plan : candidate.attacks) {
      if (plan.goal > 2) {
        plan.goal /= 2;
        any = true;
      }
    }
    if (!any || !reproduces(candidate)) break;
    best = std::move(candidate);
  }
  // Quiet the link once — noise is rarely load-bearing for a violation.
  if (best.loss > 0 || best.dup > 0 || best.corrupt > 0) {
    Scenario candidate = best;
    candidate.loss = candidate.dup = candidate.corrupt = 0;
    if (reproduces(candidate)) best = std::move(candidate);
  }
  // Collapse to a single group once — a violation that still reproduces
  // without the routing layer is independent of sharding entirely.
  if (best.shards > 1) {
    Scenario candidate = best;
    candidate.shards = 1;
    if (reproduces(candidate)) best = std::move(candidate);
  }
  // Fall back to signature auth once — a violation that survives without
  // MAC authenticators is easier to reason about.
  if (best.mac_auth) {
    Scenario candidate = best;
    candidate.mac_auth = false;
    if (reproduces(candidate)) best = std::move(candidate);
  }

  if (runs_used != nullptr) *runs_used = used;
  return best;
}

Report Explorer::explore() {
  Report report;
  report.seed = options_.seed;
  report.runs = options_.runs;
  report.guided = options_.guided;
  Rng meta(options_.seed);
  CoverageMap coverage;
  Corpus corpus;

  // Initial corpus: scenario JSONs loaded sorted by filename. The first
  // half of the run budget at most is spent replaying them (their
  // coverage re-seeds the map); any surplus joins the corpus unreplayed
  // so mutation can still reach it.
  std::vector<CorpusEntry> seeds;
  if (!options_.corpus_dir.empty()) {
    seeds = Corpus::load_dir(options_.corpus_dir);
  }
  const std::size_t replay_budget =
      std::min<std::size_t>(seeds.size(), options_.runs / 2);
  for (std::size_t k = replay_budget; k < seeds.size(); ++k) {
    corpus.add(seeds[k]);
  }

  for (std::uint32_t i = 0; i < options_.runs; ++i) {
    const std::uint64_t run_seed = meta.next_u64();
    Scenario scenario;
    std::string origin = "sampled";
    if (i < replay_budget) {
      scenario = seeds[i].scenario;
      origin = "corpus";
    } else if (options_.guided && !corpus.empty() && meta.next_bool(0.75)) {
      // Mutate a novelty-weighted corpus pick; half the time splice
      // plans in from a second (donor) entry.
      const CorpusEntry& base = corpus.pick(meta);
      const Scenario* donor = nullptr;
      if (corpus.size() >= 2 && meta.next_bool(0.5)) {
        donor = &corpus.pick(meta).scenario;
      }
      scenario = mutate_scenario(base.scenario, donor, run_seed);
      origin = "mutated";
    } else {
      scenario = Scenario::sample(run_seed);
    }
    RunRecord record;
    record.run = i;
    record.seed = run_seed;
    record.scenario = scenario.name();
    record.origin = origin;
    record.outcome = run_scenario(scenario);
    const std::size_t novel = coverage.absorb(record.outcome.signals);
    record.new_signals = static_cast<std::uint32_t>(novel);
    if (novel > 0) {
      corpus.add({scenario, static_cast<std::uint32_t>(novel)});
    }
    report.coverage_curve.push_back(
        static_cast<std::uint32_t>(coverage.size()));
    if (record.outcome.failed()) {
      ++report.failures;
      std::uint32_t used = 0;
      const Scenario minimal =
          shrink(scenario, record.outcome.failure, &used);
      record.minimal_json = minimal.to_json();
      record.shrink_runs = used;
      if (!options_.artifacts_dir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(options_.artifacts_dir, ec);
        const std::string base = options_.artifacts_dir + "/scenario_seed" +
                                 std::to_string(run_seed);
        {
          std::ofstream json_out(base + ".json");
          json_out << record.minimal_json << "\n";
        }
        {
          std::ofstream trace(base + ".trace");
          const RunOutcome replay = run_scenario(minimal, &trace);
          trace << "replay failure: "
                << (replay.failed() ? replay.failure : "(did not reproduce)")
                << "\n";
        }
        report.artifact_files.push_back(base + ".json");
        report.artifact_files.push_back(base + ".trace");
      }
    }
    report.records.push_back(std::move(record));
  }
  report.coverage = static_cast<std::uint32_t>(coverage.size());
  report.corpus_size = static_cast<std::uint32_t>(corpus.size());
  report.signals_seen.assign(coverage.seen().begin(), coverage.seen().end());
  if (options_.guided && !options_.corpus_dir.empty()) {
    corpus.save_dir(options_.corpus_dir);
  }
  return report;
}

std::string Report::to_json() const {
  metrics::JsonWriter w;
  w.begin_object();
  w.key("explorer");
  w.begin_object();
  w.key("seed");
  w.value(seed);
  w.key("runs");
  w.value(static_cast<std::uint64_t>(runs));
  w.key("failures");
  w.value(static_cast<std::uint64_t>(failures));
  w.key("guided");
  w.value(guided);
  w.key("coverage");
  w.value(static_cast<std::uint64_t>(coverage));
  w.key("corpus_size");
  w.value(static_cast<std::uint64_t>(corpus_size));
  w.end_object();
  w.key("coverage_curve");
  w.begin_array();
  for (std::uint32_t c : coverage_curve) {
    w.value(static_cast<std::uint64_t>(c));
  }
  w.end_array();
  w.key("signals");
  w.begin_array();
  for (const std::string& s : signals_seen) w.value(s);
  w.end_array();
  w.key("runs_detail");
  w.begin_array();
  for (const RunRecord& r : records) {
    w.begin_object();
    w.key("run");
    w.value(static_cast<std::uint64_t>(r.run));
    w.key("seed");
    w.value(r.seed);
    w.key("scenario");
    w.value(r.scenario);
    w.key("origin");
    w.value(r.origin);
    w.key("new_signals");
    w.value(static_cast<std::uint64_t>(r.new_signals));
    w.key("ok");
    w.value(!r.outcome.failed());
    w.key("completed");
    w.value(r.outcome.completed);
    w.key("events");
    w.value(static_cast<std::uint64_t>(r.outcome.events));
    w.key("ops");
    w.value(static_cast<std::uint64_t>(r.outcome.history_ops));
    w.key("max_lurking");
    w.value(static_cast<std::int64_t>(r.outcome.max_lurking));
    if (r.outcome.vacuous_attacks > 0) {
      w.key("vacuous_attacks");
      w.value(static_cast<std::int64_t>(r.outcome.vacuous_attacks));
    }
    if (r.outcome.ops_spanning_crashes > 0) {
      w.key("ops_spanning_crashes");
      w.value(static_cast<std::uint64_t>(r.outcome.ops_spanning_crashes));
    }
    if (r.outcome.failed()) {
      w.key("failure");
      w.value(r.outcome.failure);
      w.key("shrink_runs");
      w.value(static_cast<std::uint64_t>(r.shrink_runs));
      w.key("minimal");
      w.value(r.minimal_json);
    }
    w.end_object();
  }
  w.end_array();
  w.key("artifacts");
  w.begin_array();
  for (const std::string& file : artifact_files) w.value(file);
  w.end_array();
  w.end_object();
  return std::move(w).take();
}

}  // namespace bftbc::explore
