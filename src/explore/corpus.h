// Seed corpus + mutation operators for the guided explorer.
//
// A corpus entry is a Scenario that earned its place by exercising at
// least one coverage signal no earlier run had (CoverageMap novelty).
// The guided loop mostly mutates corpus entries instead of sampling
// fresh: knob perturbation, plan splicing from a donor entry, attack-
// phase reordering, and crash-schedule jiggling. Every mutation is a
// pure function of (base, donor, child_seed), and the mutant's own
// `seed` is child_seed — so any scenario the explorer ever runs is
// fully specified by its JSON and replays byte-identically.
//
// On-disk format: one Scenario JSON per file. Filenames are derived
// from a content hash, so re-saving an unchanged corpus is a no-op and
// directory loads (sorted by filename) are deterministic.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "explore/scenario.h"
#include "util/rng.h"

namespace bftbc::explore {

struct CorpusEntry {
  Scenario scenario;
  // Signals this entry newly contributed when admitted (its rank: more
  // novel entries are preferred as mutation bases).
  std::uint32_t novelty = 0;
};

class Corpus {
 public:
  void add(CorpusEntry entry) { entries_.push_back(std::move(entry)); }
  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }
  const std::vector<CorpusEntry>& entries() const { return entries_; }

  // Picks a mutation base: novelty-weighted, deterministic in `rng`.
  const CorpusEntry& pick(Rng& rng) const;

  // Loads every "*.json" in `dir` that parses as a Scenario, sorted by
  // filename (novelty 0 — replaying them re-establishes it). Unknown
  // JSON keys are ignored by Scenario::from_json, so corpus files may
  // carry an "expect" sidecar object for the regression test.
  static std::vector<CorpusEntry> load_dir(const std::string& dir);

  // Writes each entry as <dir>/<content-hash>.json (created if needed).
  // Returns the number of files written.
  std::size_t save_dir(const std::string& dir) const;

 private:
  std::vector<CorpusEntry> entries_;
};

// Applies 1–2 mutation operators to `base`; `donor` (may be null) feeds
// plan splicing. The result's seed is `child_seed`, client/attack ids
// are renumbered to the runner's invariants, and every field stays
// inside Scenario::from_json's validation envelope.
Scenario mutate_scenario(const Scenario& base, const Scenario* donor,
                         std::uint64_t child_seed);

}  // namespace bftbc::explore
