#include "checker/bft_linearizability.h"

#include <algorithm>
#include <sstream>

namespace bftbc::checker {

namespace {

bool version_lt(const Version& a, const Version& b) { return a < b; }

std::string op_desc(const Operation& op) {
  std::ostringstream ss;
  ss << (op.kind == OpKind::kRead ? "read" : "write") << " by client "
     << op.client << " on object " << op.object << " ["
     << op.invoked << "," << op.responded << "] version "
     << op.version.to_string();
  return ss.str();
}

}  // namespace

CheckResult::NearMiss CheckResult::near_misses(int max_b, int k) const {
  NearMiss nm;
  for (const auto& [c, info] : lurking) {
    if (info.count == max_b) ++nm.at_lurking_bound;
    if (info.count > 0 && info.count == max_b - 1) ++nm.near_lurking_bound;
    if (info.count > 0 && info.overwrites_before_last_surface == k - 1) {
      ++nm.at_masking_bound;
    }
  }
  return nm;
}

std::string CheckResult::summary() const {
  std::ostringstream ss;
  ss << (linearizable ? "linearizable" : "NOT-LINEARIZABLE")
     << (reads_authentic ? "" : " FORGED-READS");
  for (const auto& [c, info] : lurking) {
    ss << " lurking[" << c << "]=" << info.count;
  }
  if (!violations.empty()) ss << " violations=" << violations.size();
  return ss.str();
}

CheckResult check_bft_linearizability(const History& history,
                                      const std::set<ClientId>& bad_clients) {
  CheckResult result;
  const auto& ops = history.operations();

  // ---- integrity: classify every version reads returned ---------------
  // good writes per object: version -> value bytes
  std::map<ObjectId, std::map<Version, Bytes>> good_writes;
  for (const auto& op : ops) {
    if (op.kind != OpKind::kWrite) continue;
    auto [it, inserted] =
        good_writes[op.object].try_emplace(op.version, op.value);
    if (!inserted && it->second != op.value) {
      result.linearizable = false;
      result.violations.push_back("two correct writes share version " +
                                  op.version.to_string());
    }
  }

  for (const auto& op : ops) {
    if (op.kind != OpKind::kRead) continue;
    // The value must hash to the version the certificate vouched for.
    if (crypto::sha256(op.value) != op.version.hash) {
      result.reads_authentic = false;
      result.violations.push_back("read value does not match its hash: " +
                                  op_desc(op));
      continue;
    }
    if (op.version.ts.is_zero()) continue;  // genesis
    const ClientId writer = op.version.ts.id;
    auto obj_it = good_writes.find(op.object);
    const bool matches_good_write =
        obj_it != good_writes.end() &&
        obj_it->second.count(op.version) != 0;
    if (matches_good_write) continue;
    if (bad_clients.count(writer) != 0) continue;  // attributable to a bad
    result.reads_authentic = false;
    result.violations.push_back(
        "read returned a version from no known writer: " + op_desc(op));
  }

  // ---- atomicity: real-time version monotonicity ----------------------
  // O(n^2) pairwise check per object; histories in tests/benches are
  // small enough, and the simplicity doubles as the spec.
  for (std::size_t i = 0; i < ops.size(); ++i) {
    for (std::size_t j = 0; j < ops.size(); ++j) {
      if (i == j) continue;
      const Operation& a = ops[i];
      const Operation& b = ops[j];
      if (a.object != b.object) continue;
      if (!(a.responded < b.invoked)) continue;  // not real-time ordered
      if (b.kind == OpKind::kWrite) {
        // A write's version is fresh: strictly above everything that
        // completed before it began.
        if (!version_lt(a.version, b.version)) {
          result.linearizable = false;
          result.violations.push_back("stale write version: {" + op_desc(a) +
                                      "} then {" + op_desc(b) + "}");
        }
      } else {
        if (version_lt(b.version, a.version)) {
          result.linearizable = false;
          result.violations.push_back("read went backwards: {" + op_desc(a) +
                                      "} then {" + op_desc(b) + "}");
        }
      }
    }
  }

  // ---- lurking-write bound (Theorem 1 construction) -------------------
  for (const StopEvent& stop : history.stops()) {
    LurkingInfo info;

    // Per object: the highest version any correct-client op had completed
    // before the stop — everything at or below it existed before the bad
    // client left.
    std::map<ObjectId, Version> v_pre;
    for (const auto& op : ops) {
      if (op.responded < stop.at) {
        auto [it, inserted] = v_pre.try_emplace(op.object, op.version);
        if (!inserted && version_lt(it->second, op.version))
          it->second = op.version;
      }
    }

    // Versions written by the stopped client and first surfaced by reads
    // invoked after the stop.
    std::map<ObjectId, std::set<Version>> surfaced_before, candidates;
    std::map<ObjectId, std::map<Version, sim::Time>> first_after;  // by read inv
    for (const auto& op : ops) {
      if (op.kind != OpKind::kRead) continue;
      if (op.version.ts.is_zero() || op.version.ts.id != stop.client) continue;
      if (op.invoked < stop.at) {
        surfaced_before[op.object].insert(op.version);
      } else {
        candidates[op.object].insert(op.version);
        auto& t = first_after[op.object][op.version];
        if (t == 0 || op.invoked < t) t = op.invoked;
      }
    }

    std::vector<std::pair<ObjectId, Version>> lurkers;
    for (const auto& [object, versions] : candidates) {
      for (const Version& v : versions) {
        if (surfaced_before[object].count(v) != 0) continue;  // pre-stop
        auto pre = v_pre.find(object);
        if (pre != v_pre.end() && !version_lt(pre->second, v)) {
          // At or below the pre-stop frontier: Theorem 1 places this
          // write before the stop event.
          continue;
        }
        ++info.count;
        info.versions.push_back(v);
        lurkers.emplace_back(object, v);
      }
    }

    // §7 metric, per object: overwrite masking only works through writes
    // to the SAME object (a write to another object cannot invalidate a
    // prepared lurking write). The bound is on CONSECUTIVE overwrites —
    // each invoked after the previous responded — because only a write
    // that observed its predecessor's certificate is guaranteed to chain
    // past a lurking timestamp. Two concurrent writes justified by the
    // same certificate land on the same timestamp value and advance the
    // frontier once; a faulty client's stash at that value with a higher
    // id tiebreak legitimately outlives both. So for each lurking
    // version, take the longest real-time chain of non-overlapping
    // correct-client writes to its object completed in (stop, first
    // surface); report the worst case. The first link must itself be
    // invoked after the stop: by then the stash's justifying certificate
    // is installed at a full quorum, so a post-stop chain of k=2 writes
    // provably passes the stash's value — a pre-stop straggler carries
    // no such guarantee (it may have read an older certificate). The
    // chain length is the classic activity-selection maximum: greedy by
    // earliest response.
    for (const auto& [object, v] : lurkers) {
      const sim::Time surfaced_at = first_after[object][v];
      std::vector<const Operation*> window;
      for (const auto& op : ops) {
        if (op.kind == OpKind::kWrite && op.object == object &&
            op.responded >= stop.at && op.responded < surfaced_at) {
          window.push_back(&op);
        }
      }
      std::sort(window.begin(), window.end(),
                [](const Operation* a, const Operation* b) {
                  return a->responded < b->responded;
                });
      int overwrites = 0;
      sim::Time frontier = stop.at;
      for (const Operation* op : window) {
        if (op->invoked >= frontier) {
          ++overwrites;
          frontier = op->responded;
        }
      }
      info.overwrites_before_last_surface =
          std::max(info.overwrites_before_last_surface, overwrites);
    }

    // Merge if the same client somehow stopped twice.
    auto [it, inserted] = result.lurking.try_emplace(stop.client, info);
    if (!inserted) {
      it->second.count = std::max(it->second.count, info.count);
    }
  }

  return result;
}

}  // namespace bftbc::checker
