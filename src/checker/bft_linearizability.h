// BFT-linearizability checker (paper §4.2, Definition 1).
//
// Given a verifiable history (correct clients' ops + bad clients' stop
// events) and the set of Byzantine client ids, the checker verifies:
//
//  (1)+(2) Atomicity for correct clients: there is a legal sequential
//      history agreeing with every correct client's subhistory and
//      preserving real-time order. For a register whose versions are
//      totally ordered by (timestamp, hash) — which certificates enforce —
//      this reduces to per-pair monotonicity checks:
//        a completes before b begins  ⇒  version(a) ≤ version(b),
//        and strictly < when b is a write (its version is fresh).
//
//  (integrity) Every version a read returns is accounted for: the genesis
//      version, a correct client's write (with matching bytes), or a
//      write attributable to a declared-Byzantine client. Anything else
//      is a forgery and the run is unsafe.
//
//  (3) The lurking-write bound: for each stopped bad client c, count the
//      distinct versions written by c that surface only after its stop
//      event — computed with Theorem 1's conservative construction (the
//      stop placed as late as possible; a c-write placed immediately
//      before its first reader). The protocol guarantees ≤ 1 for base
//      BFT-BC and ≤ 2 for the optimized variant.
//
// The checker also measures the §7 "overwrites to mask" metric: how many
// consecutive correct-client overwrites after the stop were needed before
// the last lurking write surfaced (∞-capped at the history end).
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "checker/history.h"

namespace bftbc::checker {

struct LurkingInfo {
  int count = 0;  // distinct lurking versions (Definition 1's |{o ∈ h2}|)
  // Longest chain of CONSECUTIVE correct-client overwrites — each
  // invoked after the previous responded, the first invoked after the
  // stop — completed before the LAST lurking version surfaced. The §7
  // variant bounds this by a constant; the plain protocols do not.
  // Concurrent writes justified by the same certificate are one chain
  // link at most: they advance the version frontier once, so a lurking
  // timestamp winning their id tiebreak is legitimate, not masking.
  int overwrites_before_last_surface = 0;
  std::vector<Version> versions;
};

struct CheckResult {
  bool linearizable = true;
  bool reads_authentic = true;  // integrity clause
  std::vector<std::string> violations;
  std::map<ClientId, LurkingInfo> lurking;  // keyed by stopped bad client

  [[nodiscard]] bool ok(int max_b) const {
    if (!linearizable || !reads_authentic) return false;
    for (const auto& [c, info] : lurking) {
      if (info.count > max_b) return false;
    }
    return true;
  }

  // BFT-linearizability+ (§7.1): additionally, no operation of a stopped
  // faulty client may surface after the k-th consecutive state-
  // overwriting operation following its stop event. Operationally: every
  // lurking write must have surfaced while fewer than k correct-client
  // overwrites had completed.
  [[nodiscard]] bool ok_plus(int max_b, int k) const {
    if (!ok(max_b)) return false;
    for (const auto& [c, info] : lurking) {
      if (info.count > 0 && info.overwrites_before_last_surface >= k)
        return false;
    }
    return true;
  }

  int max_lurking() const {
    int m = 0;
    for (const auto& [c, info] : lurking) m = std::max(m, info.count);
    return m;
  }

  // Coverage signals for the explorer: how close the run came to the
  // mode's bounds WITHOUT crossing them. A run that pushes a bound to
  // the brink exercises protocol machinery a quiet run never touches,
  // so the fuzzer treats these as novelty even when the verdict is ok.
  struct NearMiss {
    int at_lurking_bound = 0;    // stopped clients with count == max_b
    int near_lurking_bound = 0;  // count == max_b - 1 (and > 0)
    int at_masking_bound = 0;    // lurkers that surfaced at exactly k-1
                                 // same-object overwrites (§7 brink)
  };
  [[nodiscard]] NearMiss near_misses(int max_b, int k) const;

  std::string summary() const;
};

// `bad_clients`: ids the test declared Byzantine. Reads returning
// versions written by ids outside (good writers ∪ bad_clients ∪ genesis)
// are forgeries.
[[nodiscard]] CheckResult check_bft_linearizability(
    const History& history, const std::set<ClientId>& bad_clients);

}  // namespace bftbc::checker
