// Verifiable histories (paper §4.1).
//
// A History records, in real time, the invocations and responses of
// CORRECT clients plus the stop events of faulty clients — exactly the
// events the paper's correctness condition ranges over. Bad clients' own
// operations are never recorded (we cannot observe their internals);
// their writes enter the analysis only through the values correct
// readers return, mirroring Theorem 1's construction.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "crypto/sha256.h"
#include "quorum/timestamp.h"
#include "sim/simulator.h"

namespace bftbc::checker {

using quorum::ClientId;
using quorum::Timestamp;
using ObjectId = std::uint64_t;

// A version is the unit of register state: (timestamp, value hash).
// In the base protocol timestamps identify versions uniquely; the
// optimized protocol can produce two versions sharing a timestamp, which
// the hash disambiguates (ordered numerically, §6.3).
struct Version {
  Timestamp ts;
  crypto::Digest hash{};

  friend bool operator==(const Version& a, const Version& b) {
    return a.ts == b.ts && a.hash == b.hash;
  }
  friend bool operator<(const Version& a, const Version& b) {
    if (!(a.ts == b.ts)) return a.ts < b.ts;
    return crypto::compare_digests(a.hash, b.hash) < 0;
  }
  friend bool operator<=(const Version& a, const Version& b) {
    return a < b || a == b;
  }

  std::string to_string() const;
};

enum class OpKind { kRead, kWrite };

struct Operation {
  OpKind kind;
  ClientId client = 0;
  ObjectId object = 0;
  sim::Time invoked = 0;
  sim::Time responded = 0;
  Version version;      // written version, or version returned by a read
  Bytes value;          // payload written / returned
};

struct StopEvent {
  ClientId client = 0;
  sim::Time at = 0;
};

// A replica crash/restart interval. The correctness condition is
// OBLIVIOUS to these — BFT-linearizability must hold through any ≤ f
// replica failures — so the checker's verdict never consults them; they
// ride on the history so a failure report names the fault schedule the
// run survived (or didn't), and so the explorer can treat "ops in
// flight across a restart" as a coverage signal.
struct CrashEvent {
  std::uint32_t replica = 0;       // harness NodeId of the crashed replica
  sim::Time at = 0;
  sim::Time restarted_at = 0;      // 0 = crashed for the rest of the run
};

class History {
 public:
  // Begin an operation; returns a token to close it with.
  std::size_t begin_read(ClientId client, ObjectId object, sim::Time now);
  std::size_t begin_write(ClientId client, ObjectId object, sim::Time now,
                          const Bytes& value);
  void end_read(std::size_t token, sim::Time now, const Timestamp& ts,
                const crypto::Digest& hash, const Bytes& value);
  void end_write(std::size_t token, sim::Time now, const Timestamp& ts);
  // Abandon an operation that failed (it never responded; excluded from
  // the analysis, like an incomplete op in linearizability checking).
  void abort(std::size_t token);

  // Record that `client` (a faulty one) stopped at `now`.
  void record_stop(ClientId client, sim::Time now);

  // Record a replica crash/restart interval (restarted_at = 0 if it
  // never came back). Metadata only — see CrashEvent.
  void record_crash(std::uint32_t replica, sim::Time at,
                    sim::Time restarted_at);

  // Completed ops whose [invoked, responded] interval overlaps the
  // [at, restarted_at] downtime of at least one crash — the in-flight-
  // across-a-restart population (coverage signal; boundary cases are
  // pinned in checker_test).
  std::size_t ops_spanning_crashes() const;

  // Appends an already-completed operation verbatim (used when splitting
  // or merging histories; normal recording goes through begin_*/end_*).
  void add_completed(Operation op) { ops_.push_back(std::move(op)); }

  // Completed operations in completion order.
  const std::vector<Operation>& operations() const { return ops_; }
  const std::vector<StopEvent>& stops() const { return stops_; }
  const std::vector<CrashEvent>& crashes() const { return crashes_; }

  // Clients that appear in a stop event.
  std::set<ClientId> stopped_clients() const;

  std::size_t completed_count() const { return ops_.size(); }

 private:
  struct Pending {
    Operation op;
    bool open = false;
  };
  std::vector<Pending> pending_;
  std::vector<Operation> ops_;
  std::vector<StopEvent> stops_;
  std::vector<CrashEvent> crashes_;
};

// Partitions a history into `parts` disjoint sub-histories by object
// ownership: operation ops[i] lands in part part_of(ops[i].object).
// Stop events are copied into EVERY part — a stopped client is stopped
// for all objects, wherever they live — and so are crash events (a
// crashed replica is down for every object its group serves), so each
// sub-history is itself a complete verifiable history and the checker's
// per-part verdicts compose: BFT-BC is per-object end to end, so a sharded deployment is
// BFT-linearizable iff every shard's sub-history is (certificates,
// prepare lists, and timestamp chains never cross objects, let alone
// shards). Completion order within each part is preserved.
std::vector<History> split_history(
    const History& h, std::size_t parts,
    const std::function<std::size_t(ObjectId)>& part_of);

}  // namespace bftbc::checker
