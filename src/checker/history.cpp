#include "checker/history.h"

#include "util/hex.h"

namespace bftbc::checker {

std::string Version::to_string() const {
  return ts.to_string() + "#" + hex_prefix(crypto::digest_view(hash), 8);
}

std::size_t History::begin_read(ClientId client, ObjectId object,
                                sim::Time now) {
  Pending p;
  p.op.kind = OpKind::kRead;
  p.op.client = client;
  p.op.object = object;
  p.op.invoked = now;
  p.open = true;
  pending_.push_back(std::move(p));
  return pending_.size() - 1;
}

std::size_t History::begin_write(ClientId client, ObjectId object,
                                 sim::Time now, const Bytes& value) {
  Pending p;
  p.op.kind = OpKind::kWrite;
  p.op.client = client;
  p.op.object = object;
  p.op.invoked = now;
  p.op.value = value;
  p.op.version.hash = crypto::sha256(value);
  p.open = true;
  pending_.push_back(std::move(p));
  return pending_.size() - 1;
}

void History::end_read(std::size_t token, sim::Time now, const Timestamp& ts,
                       const crypto::Digest& hash, const Bytes& value) {
  Pending& p = pending_.at(token);
  if (!p.open) return;
  p.open = false;
  p.op.responded = now;
  p.op.version.ts = ts;
  p.op.version.hash = hash;
  p.op.value = value;
  ops_.push_back(p.op);
}

void History::end_write(std::size_t token, sim::Time now,
                        const Timestamp& ts) {
  Pending& p = pending_.at(token);
  if (!p.open) return;
  p.open = false;
  p.op.responded = now;
  p.op.version.ts = ts;
  ops_.push_back(p.op);
}

void History::abort(std::size_t token) { pending_.at(token).open = false; }

void History::record_stop(ClientId client, sim::Time now) {
  stops_.push_back(StopEvent{client, now});
}

void History::record_crash(std::uint32_t replica, sim::Time at,
                           sim::Time restarted_at) {
  crashes_.push_back(CrashEvent{replica, at, restarted_at});
}

std::size_t History::ops_spanning_crashes() const {
  std::size_t spanning = 0;
  for (const Operation& op : ops_) {
    for (const CrashEvent& c : crashes_) {
      // Downtime is [c.at, end), end = restart time or forever. The op
      // interval is closed: an op that responds exactly at the crash
      // instant, or is invoked exactly at the restart instant, does NOT
      // overlap the downtime.
      const bool ends_before = op.responded <= c.at;
      const bool starts_after =
          c.restarted_at != 0 && op.invoked >= c.restarted_at;
      if (!ends_before && !starts_after) {
        ++spanning;
        break;
      }
    }
  }
  return spanning;
}

std::set<ClientId> History::stopped_clients() const {
  std::set<ClientId> out;
  for (const auto& s : stops_) out.insert(s.client);
  return out;
}

std::vector<History> split_history(
    const History& h, std::size_t parts,
    const std::function<std::size_t(ObjectId)>& part_of) {
  std::vector<History> out(parts == 0 ? 1 : parts);
  for (const Operation& op : h.operations()) {
    const std::size_t part = part_of(op.object);
    out.at(part).add_completed(op);
  }
  for (const StopEvent& stop : h.stops()) {
    for (History& part : out) part.record_stop(stop.client, stop.at);
  }
  for (const CrashEvent& crash : h.crashes()) {
    for (History& part : out) {
      part.record_crash(crash.replica, crash.at, crash.restarted_at);
    }
  }
  return out;
}

}  // namespace bftbc::checker
