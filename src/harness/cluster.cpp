#include "harness/cluster.h"

namespace bftbc::harness {

Cluster::Cluster(ClusterOptions options)
    : options_(std::move(options)),
      config_(quorum::QuorumConfig::bft_bc(options_.f)),
      sim_(),
      rng_(options_.seed),
      tracer_(options_.trace_capacity),
      net_(sim_, rng_.split(), options_.link),
      keystore_(options_.scheme, options_.seed ^ 0x5eedc0de, options_.rsa_bits) {
  net_.bind_metrics(metrics_, "net");
  if (tracer_.enabled()) net_.set_tracer(&tracer_);

  replica_transports_.resize(config_.n);
  replicas_.resize(config_.n);
  for (quorum::ReplicaId r = 0; r < config_.n; ++r) construct_replica(r);
}

core::ReplicaOptions Cluster::effective_replica_options() {
  core::ReplicaOptions ropts = options_.replica;
  ropts.optimized = options_.optimized;
  ropts.strong = options_.strong;
  ropts.mac_auth = options_.mac_auth;
  if (ropts.registry == nullptr) ropts.registry = &metrics_;
  return ropts;
}

void Cluster::construct_replica(quorum::ReplicaId r) {
  const core::ReplicaOptions ropts = effective_replica_options();
  auto transport = std::make_unique<rpc::SimTransport>(
      net_, r, options_.coalesce_sends ? &sim_ : nullptr);
  std::unique_ptr<core::Replica> replica;
  auto factory = options_.replica_factories.find(r);
  if (factory != options_.replica_factories.end() && factory->second) {
    replica = factory->second(config_, r, keystore_, *transport, sim_, ropts);
  } else {
    replica = std::make_unique<core::Replica>(config_, r, keystore_,
                                              *transport, sim_, ropts);
  }
  replica_transports_[r] = std::move(transport);
  replicas_[r] = std::move(replica);
}

Cluster::~Cluster() = default;

std::vector<sim::NodeId> Cluster::replica_nodes() const {
  std::vector<sim::NodeId> nodes(config_.n);
  for (quorum::ReplicaId r = 0; r < config_.n; ++r) nodes[r] = r;
  return nodes;
}

core::Client& Cluster::add_client(quorum::ClientId id) {
  core::ClientOptions copts = options_.client_defaults;
  copts.optimized = options_.optimized;
  copts.strong = options_.strong;
  copts.mac_auth = options_.mac_auth;
  return add_client(id, copts);
}

core::Client& Cluster::add_client(quorum::ClientId id,
                                  core::ClientOptions copts) {
  auto existing = clients_.find(id);
  if (existing != clients_.end()) return *existing->second;

  if (copts.registry == nullptr) copts.registry = &metrics_;
  if (copts.tracer == nullptr && tracer_.enabled()) copts.tracer = &tracer_;
  auto transport = std::make_unique<rpc::SimTransport>(
      net_, client_node(id), options_.coalesce_sends ? &sim_ : nullptr);
  auto client = std::make_unique<core::Client>(config_, id, keystore_,
                                               *transport, sim_,
                                               replica_nodes(), rng_.split(),
                                               copts);
  core::Client& ref = *client;
  client_transports_[id] = std::move(transport);
  clients_[id] = std::move(client);
  // Clients created through the harness are authorized writers (only
  // relevant when replicas enforce the ACL).
  for (auto& replica : replicas_) replica->authorize(id);
  return ref;
}

metrics::MetricsRegistry& Cluster::snapshot_metrics() {
  for (quorum::ReplicaId r = 0; r < config_.n; ++r) {
    metrics_.fold_counters("replica/" + std::to_string(r),
                           replicas_[r]->metrics());
  }
  for (const auto& [id, client] : clients_) {
    metrics_.fold_counters("client/" + std::to_string(id), client->metrics());
  }
  // Keystore counters land unscoped: "sig_cache_hit", "sig_cache_miss",
  // "sig_verify_calls", "sign", "verify".
  metrics_.fold_counters("", keystore_.counters());
  return metrics_;
}

std::unique_ptr<rpc::Transport> Cluster::make_transport(sim::NodeId node) {
  return std::make_unique<rpc::SimTransport>(
      net_, node, options_.coalesce_sends ? &sim_ : nullptr);
}

Result<core::Client::WriteResult> Cluster::write(core::Client& c,
                                                 quorum::ObjectId object,
                                                 Bytes value) {
  std::optional<Result<core::Client::WriteResult>> result;
  c.write(object, std::move(value),
          [&result](Result<core::Client::WriteResult> r) {
            result = std::move(r);
          });
  run_until([&result] { return result.has_value(); });
  if (!result.has_value())
    return Status(StatusCode::kInternal, "simulation drained before write completed");
  return *result;
}

Result<core::Client::ReadResult> Cluster::read(core::Client& c,
                                               quorum::ObjectId object) {
  std::optional<Result<core::Client::ReadResult>> result;
  c.read(object, [&result](Result<core::Client::ReadResult> r) {
    result = std::move(r);
  });
  run_until([&result] { return result.has_value(); });
  if (!result.has_value())
    return Status(StatusCode::kInternal, "simulation drained before read completed");
  return std::move(*result);
}

bool Cluster::run_until(const std::function<bool()>& done,
                        std::size_t max_events) {
  return !sim_.run_while_pending([&done] { return !done(); }, max_events);
}

void Cluster::settle() {
  sim_.run();
}

void Cluster::crash_replica(quorum::ReplicaId r) { net_.crash(r); }

void Cluster::recover_replica(quorum::ReplicaId r) { net_.recover(r); }

void Cluster::restart_replica(quorum::ReplicaId r,
                              const std::vector<quorum::ObjectId>& objects) {
  // Fail-stop restart with amnesia: everything in memory is gone.
  // Destruction order matters — the replica's constructor registered a
  // receiver on its transport, so the replica dies first, then the
  // transport (which unregisters the node from the network).
  replicas_[r].reset();
  replica_transports_[r].reset();
  construct_replica(r);
  net_.recover(r);

  // The ACL was part of the lost state; re-authorize the current client
  // population as an administrator config push would. Stopped clients
  // get re-added too, harmlessly: their keys are revoked, so no new
  // signature of theirs verifies regardless of the ACL.
  for (const auto& [id, client] : clients_) replicas_[r]->authorize(id);

  std::vector<sim::NodeId> peers;
  peers.reserve(config_.n - 1);
  for (quorum::ReplicaId p = 0; p < config_.n; ++p) {
    if (p != r) peers.push_back(p);
  }
  replicas_[r]->begin_recovery(objects, std::move(peers));
}

void Cluster::stop_client(quorum::ClientId c) {
  // Both halves of the paper's administrator action: the key can no
  // longer mint new signatures, and the ACL entry disappears.
  keystore_.revoke(quorum::client_principal(c));
  for (auto& replica : replicas_) replica->deauthorize(c);
}

}  // namespace bftbc::harness
