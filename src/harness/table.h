// Fixed-width table printer for the experiment binaries: every bench
// prints paper-claim-vs-measured rows through this, so EXPERIMENTS.md and
// bench output stay visually aligned.
#pragma once

#include <cstdio>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace bftbc::harness {

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {
    widths_.reserve(headers_.size());
    for (const auto& h : headers_) widths_.push_back(h.size());
  }

  void add_row(std::vector<std::string> cells) {
    for (std::size_t i = 0; i < cells.size() && i < widths_.size(); ++i) {
      widths_[i] = std::max(widths_[i], cells[i].size());
    }
    rows_.push_back(std::move(cells));
  }

  void print(std::ostream& os = std::cout) const {
    print_row(os, headers_);
    std::string sep;
    for (std::size_t i = 0; i < headers_.size(); ++i) {
      sep += std::string(widths_[i] + 2, '-');
      if (i + 1 < headers_.size()) sep += "+";
    }
    os << sep << "\n";
    for (const auto& row : rows_) print_row(os, row);
  }

  static std::string num(double v, int precision = 2) {
    std::ostringstream ss;
    ss << std::fixed << std::setprecision(precision) << v;
    return ss.str();
  }

 private:
  void print_row(std::ostream& os, const std::vector<std::string>& cells) const {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      os << " " << std::left << std::setw(static_cast<int>(widths_[i]))
         << cells[i] << " ";
      if (i + 1 < cells.size()) os << "|";
    }
    os << "\n";
  }

  std::vector<std::string> headers_;
  std::vector<std::size_t> widths_;
  std::vector<std::vector<std::string>> rows_;
};

inline void print_experiment_header(const std::string& id,
                                    const std::string& claim) {
  std::cout << "\n=== " << id << " ===\n"
            << "paper claim: " << claim << "\n\n";
}

}  // namespace bftbc::harness
