#include "harness/sharded_cluster.h"

#include <string>
#include <utility>

namespace bftbc::harness {

ShardedCluster::ShardedCluster(ShardedClusterOptions options)
    : options_(std::move(options)),
      map_(options_.shards),
      config_(quorum::QuorumConfig::bft_bc(options_.f)),
      sim_(),
      rng_(options_.seed),
      net_(sim_, rng_.split(), options_.link) {
  net_.bind_metrics(metrics_, "net");

  const std::uint64_t key_base = options_.seed ^ 0x5eedc0de;
  for (std::uint32_t s = 0; s < map_.shards(); ++s) {
    keystores_.push_back(std::make_unique<crypto::Keystore>(
        options_.scheme, shard::shard_key_seed(key_base, s),
        options_.rsa_bits));
    replica_transports_.emplace_back();
    replicas_.emplace_back();
    replica_transports_[s].resize(config_.n);
    replicas_[s].resize(config_.n);
    for (quorum::ReplicaId r = 0; r < config_.n; ++r) {
      construct_replica(s, r);
    }
  }
}

void ShardedCluster::construct_replica(std::uint32_t s, quorum::ReplicaId r) {
  core::ReplicaOptions ropts = options_.replica;
  ropts.optimized = options_.optimized;
  ropts.strong = options_.strong;
  ropts.mac_auth = options_.mac_auth;
  if (ropts.registry == nullptr) ropts.registry = &metrics_;
  ropts.metrics_scope =
      "shard/" + std::to_string(s) + "/replica/" + std::to_string(r);

  auto transport = std::make_unique<rpc::SimTransport>(
      net_, shard_replica_node(s, r), options_.coalesce_sends ? &sim_ : nullptr);
  std::unique_ptr<core::Replica> replica;
  auto factory = options_.replica_factories.find(r);
  if (factory != options_.replica_factories.end() && factory->second) {
    replica =
        factory->second(config_, r, *keystores_[s], *transport, sim_, ropts);
  } else {
    replica = std::make_unique<core::Replica>(config_, r, *keystores_[s],
                                              *transport, sim_, ropts);
  }
  replica_transports_[s][r] = std::move(transport);
  replicas_[s][r] = std::move(replica);
}

ShardedCluster::~ShardedCluster() = default;

core::Replica& ShardedCluster::replica(std::uint32_t shard,
                                       quorum::ReplicaId r) {
  return *replicas_.at(shard).at(r);
}

std::vector<sim::NodeId> ShardedCluster::replica_nodes(
    std::uint32_t shard) const {
  std::vector<sim::NodeId> nodes(config_.n);
  for (quorum::ReplicaId r = 0; r < config_.n; ++r) {
    nodes[r] = shard_replica_node(shard, r);
  }
  return nodes;
}

shard::RoutingClient& ShardedCluster::add_client(quorum::ClientId id) {
  return add_client(id, options_.client_defaults, options_.routing);
}

shard::RoutingClient& ShardedCluster::add_client(
    quorum::ClientId id, core::ClientOptions base_copts,
    shard::RoutingClientOptions routing) {
  auto existing = clients_.find(id);
  if (existing != clients_.end()) return *existing->second.router;

  ShardedClient entry;
  std::vector<core::Client*> legs;
  for (std::uint32_t s = 0; s < map_.shards(); ++s) {
    core::ClientOptions copts = base_copts;
    copts.optimized = options_.optimized;
    copts.strong = options_.strong;
    copts.mac_auth = options_.mac_auth;
    if (copts.registry == nullptr) copts.registry = &metrics_;
    // Distinct per-shard prefixes: the legs' latency streams must never
    // alias each other or the router's aggregate summaries.
    copts.metrics_prefix = "shard/" + std::to_string(s) + "/";
    auto transport = std::make_unique<rpc::SimTransport>(
        net_, shard_client_node(s, id),
        options_.coalesce_sends ? &sim_ : nullptr);
    auto leg = std::make_unique<core::Client>(config_, id, *keystores_[s],
                                              *transport, sim_,
                                              replica_nodes(s), rng_.split(),
                                              copts);
    legs.push_back(leg.get());
    entry.transports.push_back(std::move(transport));
    entry.legs.push_back(std::move(leg));
    for (auto& replica : replicas_[s]) replica->authorize(id);
  }
  if (routing.registry == nullptr) routing.registry = &metrics_;
  entry.router = std::make_unique<shard::RoutingClient>(map_, std::move(legs),
                                                        sim_, routing);
  shard::RoutingClient& ref = *entry.router;
  clients_[id] = std::move(entry);
  return ref;
}

std::unique_ptr<rpc::Transport> ShardedCluster::make_transport(
    sim::NodeId node) {
  return std::make_unique<rpc::SimTransport>(
      net_, node, options_.coalesce_sends ? &sim_ : nullptr);
}

metrics::MetricsRegistry& ShardedCluster::snapshot_metrics() {
  for (std::uint32_t s = 0; s < map_.shards(); ++s) {
    const std::string shard_prefix = "shard/" + std::to_string(s);
    for (quorum::ReplicaId r = 0; r < config_.n; ++r) {
      metrics_.fold_counters(shard_prefix + "/replica/" + std::to_string(r),
                             replicas_[s][r]->metrics());
    }
    // Per-shard keystore counters ("sig_cache_hit", "sign", ...).
    metrics_.fold_counters(shard_prefix, keystores_[s]->counters());
  }
  for (const auto& [id, entry] : clients_) {
    // Router totals land under the names the bench compare gate parses
    // ("client/<id>/writes"); the legs keep their shard scope.
    metrics_.fold_counters("client/" + std::to_string(id),
                           entry.router->metrics());
    for (std::uint32_t s = 0; s < map_.shards(); ++s) {
      metrics_.fold_counters(
          "shard/" + std::to_string(s) + "/client/" + std::to_string(id),
          entry.legs[s]->metrics());
    }
  }
  return metrics_;
}

Result<core::Client::WriteResult> ShardedCluster::write(
    shard::RoutingClient& c, quorum::ObjectId object, Bytes value) {
  std::optional<Result<core::Client::WriteResult>> result;
  c.write(object, std::move(value),
          [&result](Result<core::Client::WriteResult> r) {
            result = std::move(r);
          });
  run_until([&result] { return result.has_value(); });
  if (!result.has_value()) {
    return Status(StatusCode::kInternal,
                  "simulation drained before write completed");
  }
  return *result;
}

Result<core::Client::ReadResult> ShardedCluster::read(shard::RoutingClient& c,
                                                      quorum::ObjectId object) {
  std::optional<Result<core::Client::ReadResult>> result;
  c.read(object, [&result](Result<core::Client::ReadResult> r) {
    result = std::move(r);
  });
  run_until([&result] { return result.has_value(); });
  if (!result.has_value()) {
    return Status(StatusCode::kInternal,
                  "simulation drained before read completed");
  }
  return std::move(*result);
}

bool ShardedCluster::run_until(const std::function<bool()>& done,
                               std::size_t max_events) {
  return !sim_.run_while_pending([&done] { return !done(); }, max_events);
}

void ShardedCluster::settle() { sim_.run(); }

void ShardedCluster::crash_replica(std::uint32_t shard, quorum::ReplicaId r) {
  net_.crash(shard_replica_node(shard, r));
}

void ShardedCluster::recover_replica(std::uint32_t shard,
                                     quorum::ReplicaId r) {
  net_.recover(shard_replica_node(shard, r));
}

void ShardedCluster::restart_replica(
    std::uint32_t shard, quorum::ReplicaId r,
    const std::vector<quorum::ObjectId>& objects) {
  // Same fail-stop-with-amnesia semantics as Cluster::restart_replica:
  // replica first (its dtor must run while the transport is alive),
  // then transport, then rebuild both and recover state from the
  // shard's surviving peers. Only objects owned by this shard are
  // transferable — peers of other groups hold unrelated keyspaces and
  // their certificates would not validate here anyway.
  replicas_[shard][r].reset();
  replica_transports_[shard][r].reset();
  construct_replica(shard, r);
  net_.recover(shard_replica_node(shard, r));

  for (const auto& [id, entry] : clients_) {
    (void)entry;
    replicas_[shard][r]->authorize(id);
  }

  std::vector<sim::NodeId> peers;
  peers.reserve(config_.n - 1);
  for (quorum::ReplicaId p = 0; p < config_.n; ++p) {
    if (p != r) peers.push_back(shard_replica_node(shard, p));
  }
  std::vector<quorum::ObjectId> owned;
  for (quorum::ObjectId obj : objects) {
    if (map_.shard_of(obj) == shard) owned.push_back(obj);
  }
  replicas_[shard][r]->begin_recovery(owned, std::move(peers));
}

void ShardedCluster::partition_shard(std::uint32_t shard) {
  // Cut the group off from every client leg that talks to it. Links
  // inside the group (and every other shard) stay up.
  std::vector<sim::NodeId> group = replica_nodes(shard);
  std::vector<sim::NodeId> outside;
  for (const auto& [id, entry] : clients_) {
    (void)entry;
    outside.push_back(shard_client_node(shard, id));
  }
  net_.partition_group(group, outside);
}

void ShardedCluster::heal_shard(std::uint32_t shard) {
  for (quorum::ReplicaId r = 0; r < config_.n; ++r) {
    const sim::NodeId node = shard_replica_node(shard, r);
    for (const auto& [id, entry] : clients_) {
      (void)entry;
      net_.heal(node, shard_client_node(shard, id));
    }
  }
}

void ShardedCluster::stop_client(quorum::ClientId c) {
  for (std::uint32_t s = 0; s < map_.shards(); ++s) {
    keystores_[s]->revoke(quorum::client_principal(c));
    for (auto& replica : replicas_[s]) replica->deauthorize(c);
  }
}

}  // namespace bftbc::harness
