// Harnesses for the baseline protocols (classic BQS and Phalanx-style),
// mirroring harness::Cluster for BFT-BC so benches can sweep all three
// protocols with the same driver code.
#pragma once

#include <map>
#include <memory>

#include "baselines/bqs.h"
#include "baselines/phalanx.h"
#include "baselines/sbql.h"
#include "harness/cluster.h"

namespace bftbc::harness {

struct BaselineOptions {
  std::uint32_t f = 1;
  std::uint64_t seed = 1;
  sim::LinkConfig link;
  rpc::QuorumCallOptions rpc;
};

class BqsCluster {
 public:
  explicit BqsCluster(BaselineOptions options = BaselineOptions())
      : options_(options),
        config_(quorum::QuorumConfig::bft_bc(options.f)),
        rng_(options.seed),
        net_(sim_, rng_.split(), options.link),
        keystore_(crypto::SignatureScheme::kHmacSim, options.seed ^ 0xb05) {
    for (quorum::ReplicaId r = 0; r < config_.n; ++r) {
      auto t = std::make_unique<rpc::SimTransport>(net_, r);
      replicas_.push_back(std::make_unique<baselines::BqsReplica>(
          config_, r, keystore_, *t));
      transports_.push_back(std::move(t));
    }
  }

  const quorum::QuorumConfig& config() const { return config_; }
  sim::Simulator& sim() { return sim_; }
  sim::Network& net() { return net_; }
  crypto::Keystore& keystore() { return keystore_; }
  Rng& rng() { return rng_; }
  baselines::BqsReplica& replica(quorum::ReplicaId r) { return *replicas_[r]; }

  std::vector<sim::NodeId> replica_nodes() const {
    std::vector<sim::NodeId> nodes(config_.n);
    for (quorum::ReplicaId r = 0; r < config_.n; ++r) nodes[r] = r;
    return nodes;
  }

  baselines::BqsClient& add_client(quorum::ClientId id) {
    auto it = clients_.find(id);
    if (it != clients_.end()) return *it->second;
    auto t = std::make_unique<rpc::SimTransport>(net_, client_node(id));
    auto c = std::make_unique<baselines::BqsClient>(
        config_, id, keystore_, *t, sim_, replica_nodes(), rng_.split());
    auto& ref = *c;
    client_transports_[id] = std::move(t);
    clients_[id] = std::move(c);
    return ref;
  }

  std::unique_ptr<rpc::Transport> make_transport(sim::NodeId node) {
    return std::make_unique<rpc::SimTransport>(net_, node);
  }

  Result<baselines::BqsClient::WriteResult> write(baselines::BqsClient& c,
                                                  quorum::ObjectId object,
                                                  Bytes value) {
    std::optional<Result<baselines::BqsClient::WriteResult>> result;
    c.write(object, std::move(value),
            [&](Result<baselines::BqsClient::WriteResult> r) {
              result = std::move(r);
            });
    sim_.run_while_pending([&] { return !result.has_value(); });
    if (!result) return Status(StatusCode::kInternal, "sim drained");
    return *result;
  }

  Result<baselines::BqsClient::ReadResult> read(baselines::BqsClient& c,
                                                quorum::ObjectId object) {
    std::optional<Result<baselines::BqsClient::ReadResult>> result;
    c.read(object, [&](Result<baselines::BqsClient::ReadResult> r) {
      result = std::move(r);
    });
    sim_.run_while_pending([&] { return !result.has_value(); });
    if (!result) return Status(StatusCode::kInternal, "sim drained");
    return std::move(*result);
  }

 private:
  BaselineOptions options_;
  quorum::QuorumConfig config_;
  sim::Simulator sim_;
  Rng rng_;
  sim::Network net_;
  crypto::Keystore keystore_;
  std::vector<std::unique_ptr<rpc::SimTransport>> transports_;
  std::vector<std::unique_ptr<baselines::BqsReplica>> replicas_;
  std::map<quorum::ClientId, std::unique_ptr<rpc::SimTransport>>
      client_transports_;
  std::map<quorum::ClientId, std::unique_ptr<baselines::BqsClient>> clients_;
};

class PhalanxCluster {
 public:
  explicit PhalanxCluster(BaselineOptions options = BaselineOptions())
      : options_(options),
        config_(quorum::QuorumConfig::masking(options.f)),
        rng_(options.seed),
        net_(sim_, rng_.split(), options.link),
        keystore_(crypto::SignatureScheme::kHmacSim, options.seed ^ 0x9a1) {
    std::vector<sim::NodeId> peers(config_.n);
    for (quorum::ReplicaId r = 0; r < config_.n; ++r) peers[r] = r;
    for (quorum::ReplicaId r = 0; r < config_.n; ++r) {
      auto t = std::make_unique<rpc::SimTransport>(net_, r);
      replicas_.push_back(std::make_unique<baselines::PhalanxReplica>(
          config_, r, keystore_, *t, peers));
      transports_.push_back(std::move(t));
    }
  }

  const quorum::QuorumConfig& config() const { return config_; }
  sim::Simulator& sim() { return sim_; }
  sim::Network& net() { return net_; }
  baselines::PhalanxReplica& replica(quorum::ReplicaId r) {
    return *replicas_[r];
  }

  std::vector<sim::NodeId> replica_nodes() const {
    std::vector<sim::NodeId> nodes(config_.n);
    for (quorum::ReplicaId r = 0; r < config_.n; ++r) nodes[r] = r;
    return nodes;
  }

  baselines::PhalanxClient& add_client(quorum::ClientId id) {
    auto it = clients_.find(id);
    if (it != clients_.end()) return *it->second;
    auto t = std::make_unique<rpc::SimTransport>(net_, client_node(id));
    auto c = std::make_unique<baselines::PhalanxClient>(
        config_, id, keystore_, *t, sim_, replica_nodes(), rng_.split());
    auto& ref = *c;
    client_transports_[id] = std::move(t);
    clients_[id] = std::move(c);
    return ref;
  }

  std::unique_ptr<rpc::Transport> make_transport(sim::NodeId node) {
    return std::make_unique<rpc::SimTransport>(net_, node);
  }

  Result<baselines::PhalanxClient::WriteResult> write(
      baselines::PhalanxClient& c, quorum::ObjectId object, Bytes value) {
    std::optional<Result<baselines::PhalanxClient::WriteResult>> result;
    c.write(object, std::move(value),
            [&](Result<baselines::PhalanxClient::WriteResult> r) {
              result = std::move(r);
            });
    sim_.run_while_pending([&] { return !result.has_value(); });
    if (!result) return Status(StatusCode::kInternal, "sim drained");
    return *result;
  }

  Result<baselines::PhalanxClient::ReadResult> read(
      baselines::PhalanxClient& c, quorum::ObjectId object) {
    std::optional<Result<baselines::PhalanxClient::ReadResult>> result;
    c.read(object, [&](Result<baselines::PhalanxClient::ReadResult> r) {
      result = std::move(r);
    });
    sim_.run_while_pending([&] { return !result.has_value(); });
    if (!result) return Status(StatusCode::kInternal, "sim drained");
    return std::move(*result);
  }

  void settle() { sim_.run(); }

 private:
  BaselineOptions options_;
  quorum::QuorumConfig config_;
  sim::Simulator sim_;
  Rng rng_;
  sim::Network net_;
  crypto::Keystore keystore_;
  std::vector<std::unique_ptr<rpc::SimTransport>> transports_;
  std::vector<std::unique_ptr<baselines::PhalanxReplica>> replicas_;
  std::map<quorum::ClientId, std::unique_ptr<rpc::SimTransport>>
      client_transports_;
  std::map<quorum::ClientId, std::unique_ptr<baselines::PhalanxClient>>
      clients_;
};


class SbqlCluster {
 public:
  explicit SbqlCluster(BaselineOptions options = BaselineOptions())
      : options_(options),
        config_(quorum::QuorumConfig::bft_bc(options.f)),
        rng_(options.seed),
        net_(sim_, rng_.split(), options.link),
        keystore_(crypto::SignatureScheme::kHmacSim, options.seed ^ 0x5b1) {
    std::vector<sim::NodeId> peers(config_.n);
    for (quorum::ReplicaId r = 0; r < config_.n; ++r) peers[r] = r;
    for (quorum::ReplicaId r = 0; r < config_.n; ++r) {
      auto t = std::make_unique<rpc::SimTransport>(net_, r);
      replicas_.push_back(std::make_unique<baselines::SbqlReplica>(
          config_, r, keystore_, *t, sim_, peers));
      transports_.push_back(std::move(t));
    }
  }

  const quorum::QuorumConfig& config() const { return config_; }
  sim::Simulator& sim() { return sim_; }
  sim::Network& net() { return net_; }
  baselines::SbqlReplica& replica(quorum::ReplicaId r) { return *replicas_[r]; }

  std::vector<sim::NodeId> replica_nodes() const {
    std::vector<sim::NodeId> nodes(config_.n);
    for (quorum::ReplicaId r = 0; r < config_.n; ++r) nodes[r] = r;
    return nodes;
  }

  baselines::SbqlClient& add_client(quorum::ClientId id) {
    auto it = clients_.find(id);
    if (it != clients_.end()) return *it->second;
    auto t = std::make_unique<rpc::SimTransport>(net_, client_node(id));
    auto c = std::make_unique<baselines::SbqlClient>(
        config_, id, keystore_, *t, sim_, replica_nodes(), rng_.split());
    auto& ref = *c;
    client_transports_[id] = std::move(t);
    clients_[id] = std::move(c);
    return ref;
  }

  Result<baselines::SbqlClient::WriteResult> write(baselines::SbqlClient& c,
                                                   quorum::ObjectId object,
                                                   Bytes value) {
    std::optional<Result<baselines::SbqlClient::WriteResult>> result;
    c.write(object, std::move(value),
            [&](Result<baselines::SbqlClient::WriteResult> r) {
              result = std::move(r);
            });
    sim_.run_while_pending([&] { return !result.has_value(); });
    if (!result) return Status(StatusCode::kInternal, "sim drained");
    return *result;
  }

  Result<baselines::SbqlClient::ReadResult> read(baselines::SbqlClient& c,
                                                 quorum::ObjectId object) {
    std::optional<Result<baselines::SbqlClient::ReadResult>> result;
    c.read(object, [&](Result<baselines::SbqlClient::ReadResult> r) {
      result = std::move(r);
    });
    sim_.run_while_pending([&] { return !result.has_value(); });
    if (!result) return Status(StatusCode::kInternal, "sim drained");
    return std::move(*result);
  }

  // Total reliable-forward buffer across all replicas (the unbounded
  // state of the reliable-network assumption).
  std::size_t total_outbox_bytes() const {
    std::size_t total = 0;
    for (const auto& r : replicas_) total += r->outbox_bytes();
    return total;
  }

  // Run the simulator for a fixed amount of virtual time.
  void run_for(sim::Time t) { sim_.run_until(sim_.now() + t); }

 private:
  BaselineOptions options_;
  quorum::QuorumConfig config_;
  sim::Simulator sim_;
  Rng rng_;
  sim::Network net_;
  crypto::Keystore keystore_;
  std::vector<std::unique_ptr<rpc::SimTransport>> transports_;
  std::vector<std::unique_ptr<baselines::SbqlReplica>> replicas_;
  std::map<quorum::ClientId, std::unique_ptr<rpc::SimTransport>>
      client_transports_;
  std::map<quorum::ClientId, std::unique_ptr<baselines::SbqlClient>> clients_;
};

}  // namespace bftbc::harness

