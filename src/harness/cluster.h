// Test/bench harness: a fully wired BFT-BC cluster on the simulator.
//
// Owns the Simulator, Network, Keystore, 3f+1 replicas, and any number of
// clients; provides synchronous write/read helpers that drive the event
// loop until the operation's callback fires. Replicas can be constructed
// through a factory hook so the fault-injection module can swap Byzantine
// implementations in.
//
// Node addressing: replica r lives at NodeId r; client c lives at
// NodeId kClientNodeBase + c.
#pragma once

#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <optional>

#include "bftbc/client.h"
#include "bftbc/replica.h"
#include "metrics/registry.h"
#include "metrics/trace.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace bftbc::harness {

inline constexpr sim::NodeId kClientNodeBase = 0x10000;

inline sim::NodeId client_node(quorum::ClientId c) {
  return kClientNodeBase + c;
}

using ReplicaFactory = std::function<std::unique_ptr<core::Replica>(
    const quorum::QuorumConfig&, quorum::ReplicaId, crypto::Keystore&,
    rpc::Transport&, sim::Simulator&, const core::ReplicaOptions&)>;

struct ClusterOptions {
  std::uint32_t f = 1;
  bool optimized = false;  // applied to replicas and default client options
  bool strong = false;
  // MAC-authenticator mode (§3.3.2); applied to replicas and every
  // client so both sides of the point-to-point channels agree.
  bool mac_auth = false;
  crypto::SignatureScheme scheme = crypto::SignatureScheme::kHmacSim;
  std::size_t rsa_bits = 512;  // when scheme == kRsa
  std::uint64_t seed = 1;
  sim::LinkConfig link;
  core::ReplicaOptions replica;        // mode flags overridden by the above
  core::ClientOptions client_defaults; // mode flags overridden by the above
  // Per-replica construction hook; nullptr slots fall back to the default
  // correct replica. Keyed by replica id.
  std::map<quorum::ReplicaId, ReplicaFactory> replica_factories;
  // Ring-buffer event-trace capacity (0 disables tracing — hot benches).
  std::size_t trace_capacity = metrics::Tracer::kDefaultCapacity;
  // Same-tick send coalescing on every node's transport: envelopes bound
  // for one destination within a virtual-time instant travel as a single
  // wire message, feeding the replicas' same-tick batch verification
  // real multi-message batches (and the reply-signing amortization that
  // rides on them). Off by default: message-level tests count wire
  // traffic one envelope at a time.
  bool coalesce_sends = false;
};

class Cluster {
 public:
  explicit Cluster(ClusterOptions options = ClusterOptions());
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  const quorum::QuorumConfig& config() const { return config_; }
  sim::Simulator& sim() { return sim_; }
  sim::Network& net() { return net_; }
  crypto::Keystore& keystore() { return keystore_; }
  Rng& rng() { return rng_; }

  core::Replica& replica(quorum::ReplicaId r) { return *replicas_.at(r); }
  std::vector<sim::NodeId> replica_nodes() const;

  // Creates (or returns the existing) client with this id.
  core::Client& add_client(quorum::ClientId id);
  core::Client& add_client(quorum::ClientId id, core::ClientOptions options);
  core::Client& client(quorum::ClientId id) { return *clients_.at(id); }

  // Raw transport bound to an otherwise-unused node id — building block
  // for colluders and custom Byzantine actors.
  std::unique_ptr<rpc::Transport> make_transport(sim::NodeId node);

  // ---- synchronous convenience (drives the simulator) ----------------
  Result<core::Client::WriteResult> write(core::Client& c,
                                          quorum::ObjectId object,
                                          Bytes value);
  Result<core::Client::ReadResult> read(core::Client& c,
                                        quorum::ObjectId object);
  // Runs the simulator until `done` returns true (or the event queue
  // drains / max_events trips). Returns true iff done() held.
  bool run_until(const std::function<bool()>& done,
                 std::size_t max_events = 20'000'000);
  // Let all in-flight events settle.
  void settle();

  // ---- observability --------------------------------------------------
  // The cluster-wide registry. Network/replica/client hot paths record
  // into it directly; legacy Counters sources are folded in by
  // snapshot_metrics(). Each cluster owns its own registry so concurrent
  // experiments in one process do not bleed into each other.
  metrics::MetricsRegistry& metrics_registry() { return metrics_; }
  metrics::Tracer& tracer() { return tracer_; }

  // Folds the replica / client / keystore Counters into the registry
  // (SET semantics — safe to call repeatedly) and returns it. Call
  // before reading or serializing cluster metrics.
  metrics::MetricsRegistry& snapshot_metrics();

  // Dumps the event ring buffer (oldest first) — for test failure paths.
  void dump_trace(std::ostream& os) const { tracer_.dump(os); }

  // ---- fault controls -------------------------------------------------
  void crash_replica(quorum::ReplicaId r);
  void recover_replica(quorum::ReplicaId r);
  // Fail-stop restart with amnesia: destroys replica r (all in-memory
  // state — ObjectStates, prepare lists, ACL), rebuilds it on a fresh
  // transport via the same factory hook the constructor used, heals its
  // network links, and starts a STATE-XFER recovery of the named
  // objects from the surviving peers. Asynchronous: the caller drives
  // the simulator until `replica(r).recovering()` clears.
  void restart_replica(quorum::ReplicaId r,
                       const std::vector<quorum::ObjectId>& objects);
  // The paper's STOP event: the client's key becomes unusable for new
  // signatures (administrator removed it from the ACL).
  void stop_client(quorum::ClientId c);

 private:
  // Shared by the constructor and restart_replica: mode-flag overlay on
  // the replica options, then factory-or-default construction into slot
  // r (transport first — the replica's ctor registers its receiver).
  core::ReplicaOptions effective_replica_options();
  void construct_replica(quorum::ReplicaId r);

  ClusterOptions options_;
  quorum::QuorumConfig config_;
  sim::Simulator sim_;
  Rng rng_;
  // Declared before net_ / replicas / clients: they hold resolved handles
  // into these, so the sinks must outlive the recorders.
  metrics::MetricsRegistry metrics_;
  metrics::Tracer tracer_;
  sim::Network net_;
  crypto::Keystore keystore_;

  std::vector<std::unique_ptr<rpc::SimTransport>> replica_transports_;
  std::vector<std::unique_ptr<core::Replica>> replicas_;
  std::map<quorum::ClientId, std::unique_ptr<rpc::SimTransport>>
      client_transports_;
  std::map<quorum::ClientId, std::unique_ptr<core::Client>> clients_;
};

}  // namespace bftbc::harness
