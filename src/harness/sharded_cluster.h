// Multi-group harness: S independent 3f+1 replica groups (shards) in ONE
// simulator and ONE network, fronted by shard::RoutingClient instances.
//
// Sharding composes with the protocol because BFT-BC is per-object end to
// end (ROADMAP "scale-out"): every certificate, prepare list, and
// timestamp chain names a single object, and an object lives in exactly
// one group. Each shard gets its OWN keystore (seed derived via
// shard::shard_key_seed, shard 0 bit-identical to the single-group
// harness), so a quorum certificate minted by group A's replicas can
// never validate against group B — cross-shard certificate replay fails
// closed even with colluding Byzantine replicas in both groups.
//
// Node addressing extends harness::Cluster's scheme:
//   replica r of shard s   -> NodeId s * kShardNodeStride + r
//   client c's shard-s leg -> NodeId kClientNodeBase * (s + 1) + c
// so shard 0 occupies exactly the ids the single-shard Cluster uses.
//
// Metrics: one registry for the whole fleet. Replicas record under
// "shard/<s>/replica/<r>/...", inner per-shard clients under
// "shard/<s>/client...", and each routing client claims the aggregate
// "client.write.total_ms"/"client.read.total_ms" summaries plus
// "client/<id>/writes|reads" fold names — the names the bench compare
// gate watches — so single- and multi-shard runs emit comparable JSON.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "bftbc/client.h"
#include "bftbc/replica.h"
#include "harness/cluster.h"
#include "metrics/registry.h"
#include "shard/routing_client.h"
#include "shard/shard_map.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace bftbc::harness {

inline constexpr sim::NodeId kShardNodeStride = 0x100;
inline constexpr sim::NodeId kShardClientNodeBase = 0x10000;

inline sim::NodeId shard_replica_node(std::uint32_t shard,
                                      quorum::ReplicaId r) {
  return static_cast<sim::NodeId>(shard) * kShardNodeStride + r;
}

inline sim::NodeId shard_client_node(std::uint32_t shard,
                                     quorum::ClientId c) {
  return kShardClientNodeBase * (static_cast<sim::NodeId>(shard) + 1) + c;
}

struct ShardedClusterOptions {
  std::uint32_t shards = 2;
  std::uint32_t f = 1;
  bool optimized = false;
  bool strong = false;
  bool mac_auth = false;
  crypto::SignatureScheme scheme = crypto::SignatureScheme::kHmacSim;
  std::size_t rsa_bits = 512;
  std::uint64_t seed = 1;
  sim::LinkConfig link;
  core::ReplicaOptions replica;         // mode flags overridden by the above
  core::ClientOptions client_defaults;  // mode flags overridden by the above
  shard::RoutingClientOptions routing;  // registry filled in per client
  // Per-slot construction hook, applied to the SAME slot in EVERY shard
  // (a Byzantine slot in each independent group stays within each
  // group's f budget). Keyed by in-group replica id.
  std::map<quorum::ReplicaId, ReplicaFactory> replica_factories;
  bool coalesce_sends = false;
};

// A routing client plus the per-shard protocol clients it routes through.
struct ShardedClient {
  std::unique_ptr<shard::RoutingClient> router;
  std::vector<std::unique_ptr<core::Client>> legs;
  std::vector<std::unique_ptr<rpc::SimTransport>> transports;
};

class ShardedCluster {
 public:
  explicit ShardedCluster(ShardedClusterOptions options =
                              ShardedClusterOptions());
  ~ShardedCluster();

  ShardedCluster(const ShardedCluster&) = delete;
  ShardedCluster& operator=(const ShardedCluster&) = delete;

  std::uint32_t shards() const { return map_.shards(); }
  const shard::ShardMap& map() const { return map_; }
  std::uint32_t shard_of(quorum::ObjectId object) const {
    return map_.shard_of(object);
  }
  const quorum::QuorumConfig& config() const { return config_; }
  sim::Simulator& sim() { return sim_; }
  sim::Network& net() { return net_; }
  crypto::Keystore& keystore(std::uint32_t shard) {
    return *keystores_.at(shard);
  }
  Rng& rng() { return rng_; }

  core::Replica& replica(std::uint32_t shard, quorum::ReplicaId r);
  std::vector<sim::NodeId> replica_nodes(std::uint32_t shard) const;

  // Creates (or returns the existing) routing client with this id. The
  // client gets one protocol leg per shard, all driven by one router.
  // The two-argument form overrides the per-leg client options and the
  // router options (mode flags are still forced to the cluster's).
  shard::RoutingClient& add_client(quorum::ClientId id);
  shard::RoutingClient& add_client(quorum::ClientId id,
                                   core::ClientOptions copts,
                                   shard::RoutingClientOptions routing);
  shard::RoutingClient& client(quorum::ClientId id) {
    return *clients_.at(id).router;
  }
  core::Client& client_leg(quorum::ClientId id, std::uint32_t shard) {
    return *clients_.at(id).legs.at(shard);
  }

  // Raw transport bound to an otherwise-unused node id — building block
  // for attack actors aimed at one shard's replica group.
  std::unique_ptr<rpc::Transport> make_transport(sim::NodeId node);

  // ---- synchronous convenience (drives the simulator) ----------------
  Result<core::Client::WriteResult> write(shard::RoutingClient& c,
                                          quorum::ObjectId object,
                                          Bytes value);
  Result<core::Client::ReadResult> read(shard::RoutingClient& c,
                                        quorum::ObjectId object);
  bool run_until(const std::function<bool()>& done,
                 std::size_t max_events = 20'000'000);
  void settle();

  // ---- observability --------------------------------------------------
  metrics::MetricsRegistry& metrics_registry() { return metrics_; }
  // Folds replica / inner-client / router / keystore Counters into the
  // registry (SET semantics, safe to repeat). Router ops fold under
  // "client/<id>" (the names the bench compare gate parses); per-shard
  // sources fold under "shard/<s>/...".
  metrics::MetricsRegistry& snapshot_metrics();

  // ---- fault controls -------------------------------------------------
  void crash_replica(std::uint32_t shard, quorum::ReplicaId r);
  void recover_replica(std::uint32_t shard, quorum::ReplicaId r);
  // Fail-stop restart with amnesia (see Cluster::restart_replica):
  // rebuilds slot r of `shard` and state-transfers the subset of
  // `objects` this shard owns from the group's surviving peers.
  void restart_replica(std::uint32_t shard, quorum::ReplicaId r,
                       const std::vector<quorum::ObjectId>& objects);
  // Cuts every link into `shard`'s replica group (clients included) —
  // ops routed there stall; other shards are untouched.
  void partition_shard(std::uint32_t shard);
  void heal_shard(std::uint32_t shard);
  // The paper's STOP event, fleet-wide: the client's principal is revoked
  // in every shard's keystore and deauthorized at every replica.
  void stop_client(quorum::ClientId c);

 private:
  // Shared by the constructor and restart_replica: mode-flag overlay and
  // scoped metrics prefix, then factory-or-default construction into
  // slot [s][r] (transport first — the replica registers its receiver).
  void construct_replica(std::uint32_t s, quorum::ReplicaId r);

  ShardedClusterOptions options_;
  shard::ShardMap map_;
  quorum::QuorumConfig config_;
  sim::Simulator sim_;
  Rng rng_;
  metrics::MetricsRegistry metrics_;
  sim::Network net_;

  std::vector<std::unique_ptr<crypto::Keystore>> keystores_;
  // replicas_[shard][r]; transports parallel.
  std::vector<std::vector<std::unique_ptr<rpc::SimTransport>>>
      replica_transports_;
  std::vector<std::vector<std::unique_ptr<core::Replica>>> replicas_;
  std::map<quorum::ClientId, ShardedClient> clients_;
};

}  // namespace bftbc::harness
