// Recorder: drives client operations synchronously while logging them
// into a checker::History — the bridge between the harness and the
// BFT-linearizability checker.
#pragma once

#include "checker/history.h"
#include "harness/cluster.h"

namespace bftbc::harness {

class Recorder {
 public:
  Recorder(Cluster& cluster, checker::History& history)
      : cluster_(cluster), history_(history) {}

  Result<core::Client::WriteResult> write(core::Client& c,
                                          quorum::ObjectId object,
                                          Bytes value) {
    const std::size_t token =
        history_.begin_write(c.id(), object, cluster_.sim().now(), value);
    auto result = cluster_.write(c, object, std::move(value));
    if (result.is_ok()) {
      history_.end_write(token, cluster_.sim().now(), result.value().ts);
    } else {
      history_.abort(token);
    }
    return result;
  }

  Result<core::Client::ReadResult> read(core::Client& c,
                                        quorum::ObjectId object) {
    const std::size_t token =
        history_.begin_read(c.id(), object, cluster_.sim().now());
    auto result = cluster_.read(c, object);
    if (result.is_ok()) {
      history_.end_read(token, cluster_.sim().now(), result.value().ts,
                        result.value().hash, result.value().value);
    } else {
      history_.abort(token);
    }
    return result;
  }

  // The paper's stop event: revoke the key AND record the event in the
  // verifiable history.
  void stop_client(quorum::ClientId c) {
    cluster_.stop_client(c);
    history_.record_stop(c, cluster_.sim().now());
  }

 private:
  Cluster& cluster_;
  checker::History& history_;
};

}  // namespace bftbc::harness
