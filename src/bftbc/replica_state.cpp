#include "bftbc/replica_state.h"

#include <algorithm>

namespace bftbc::core {

std::size_t ObjectState::absorb_write_certificate(const Timestamp& wcert_ts) {
  if (wcert_ts > write_ts_) write_ts_ = wcert_ts;
  std::size_t reclaimed = 0;
  auto gc = [this, &reclaimed](std::map<ClientId, PlistEntry>& list) {
    for (auto it = list.begin(); it != list.end();) {
      if (it->second.t <= write_ts_) {
        it = list.erase(it);
        ++reclaimed;
      } else {
        ++it;
      }
    }
  };
  gc(plist_);
  gc(optlist_);
  return reclaimed;
}

ObjectState::ListOutcome ObjectState::admit(
    std::map<ClientId, PlistEntry>& list, ClientId c, const Timestamp& t,
    const crypto::Digest& h) {
  auto it = list.find(c);
  if (it != list.end()) {
    if (it->second.t != t || it->second.h != h) return ListOutcome::kConflict;
    return ListOutcome::kAlreadyPresent;
  }
  if (!(t > write_ts_)) return ListOutcome::kStale;
  list.emplace(c, PlistEntry{t, h});
  return ListOutcome::kAdmitted;
}

bool ObjectState::try_prepare(ClientId c, const Timestamp& t,
                              const crypto::Digest& h) {
  // Figure 2 phase 2 step 3: one outstanding prepare per client in the
  // NORMAL list (the optimized list is ignored here, §6.2 phase 2).
  const ListOutcome outcome = admit(plist_, c, t, h);
  // kStale (t <= write_ts) still gets a reply: the statement is harmless
  // — no write certificate can form for a timestamp the replica set has
  // already surpassed at this replica's vote... the reply simply repeats
  // an old statement. Figure 2 replies in every non-discard case.
  return outcome != ListOutcome::kConflict;
}

std::optional<Timestamp> ObjectState::try_opt_prepare(ClientId c,
                                                      const crypto::Digest& h) {
  const Timestamp predicted = pcert_.ts().succ(c);

  // A client may occupy at most one slot per list (§6.1); the optimistic
  // prepare is abandoned when the client already holds a *different*
  // entry in either list.
  auto conflicts = [&](const std::map<ClientId, PlistEntry>& list) {
    auto it = list.find(c);
    return it != list.end() &&
           (it->second.t != predicted || it->second.h != h);
  };
  if (conflicts(plist_) || conflicts(optlist_)) return std::nullopt;

  const ListOutcome outcome = admit(optlist_, c, predicted, h);
  if (outcome == ListOutcome::kStale) {
    // This replica's pcert lags behind a write certificate it has seen;
    // a prediction from stale state would be instantly garbage-collected,
    // so fall back to the normal two-phase path.
    return std::nullopt;
  }
  return predicted;
}

bool ObjectState::apply_write(const Bytes& value,
                              const PrepareCertificate& cert,
                              bool optimized_tiebreak) {
  bool newer = cert.ts() > pcert_.ts();
  if (!newer && optimized_tiebreak && cert.ts() == pcert_.ts() &&
      crypto::compare_digests(cert.hash(), pcert_.hash()) > 0) {
    // §6.2 phase 3: same timestamp, different value (possible only with a
    // Byzantine client) — deterministically retain the larger hash.
    newer = true;
  }
  if (!newer) return false;
  data_ = value;
  pcert_ = cert;
  return true;
}

void ObjectState::compact() {
  data_.shrink_to_fit();
}

namespace {

void encode_list(Writer& w, const std::map<ClientId, PlistEntry>& list) {
  w.put_varint(list.size());
  for (const auto& [c, entry] : list) {
    w.put_u32(c);
    entry.t.encode(w);
    w.put_raw(crypto::digest_view(entry.h));
  }
}

bool decode_list(Reader& r, std::map<ClientId, PlistEntry>& list) {
  const std::uint64_t count = r.get_varint();
  // Lists hold at most one entry per client; a length beyond any
  // plausible client population means the blob is corrupt.
  constexpr std::uint64_t kMaxListEntries = 1u << 20;
  if (count > kMaxListEntries) {
    r.fail();
    return false;
  }
  for (std::uint64_t i = 0; i < count; ++i) {
    const ClientId c = r.get_u32();
    PlistEntry entry;
    entry.t = Timestamp::decode(r);
    const Bytes h = r.get_raw(crypto::kDigestSize);
    if (!r.ok()) return false;
    crypto::digest_from_bytes(h, entry.h);
    list.emplace(c, entry);
  }
  return true;
}

}  // namespace

void ObjectState::encode(Writer& w) const {
  w.put_u64(object_);
  w.put_bytes(data_);
  pcert_.encode(w);
  encode_list(w, plist_);
  encode_list(w, optlist_);
  write_ts_.encode(w);
}

std::optional<ObjectState> ObjectState::decode(Reader& r) {
  ObjectState state(r.get_u64());
  state.data_ = r.get_bytes();
  state.pcert_ = PrepareCertificate::decode(r);
  if (!decode_list(r, state.plist_)) return std::nullopt;
  if (!decode_list(r, state.optlist_)) return std::nullopt;
  state.write_ts_ = Timestamp::decode(r);
  if (!r.ok()) return std::nullopt;
  return state;
}

ObjectState ObjectState::recover(ObjectId object,
                                 const std::vector<ObjectState>& peers,
                                 std::uint32_t f) {
  ObjectState out(object);
  for (const ObjectState& p : peers) {
    if (p.pcert_.ts() > out.pcert_.ts()) {
      out.pcert_ = p.pcert_;
      out.data_ = p.data_;
    }
  }
  for (const ObjectState& p : peers) {
    for (const auto& [c, entry] : p.plist_) out.plist_.emplace(c, entry);
    for (const auto& [c, entry] : p.optlist_) out.optlist_.emplace(c, entry);
  }
  std::vector<Timestamp> claims;
  claims.reserve(peers.size());
  for (const ObjectState& p : peers) claims.push_back(p.write_ts_);
  std::sort(claims.begin(), claims.end(),
            [](const Timestamp& a, const Timestamp& b) { return b < a; });
  if (claims.size() > f) {
    // absorb also GCs entries at or below the adopted frontier, exactly
    // as a live write certificate would have.
    (void)out.absorb_write_certificate(claims[f]);
  }
  return out;
}

std::size_t ObjectState::state_bytes() const {
  std::size_t total = data_.size();
  // Prepare certificate: timestamp + hash + signatures.
  total += sizeof(Timestamp) + crypto::kDigestSize;
  for (const auto& [r, sig] : pcert_.signatures()) {
    total += sizeof(r) + sig.size();
  }
  const std::size_t per_entry =
      sizeof(ClientId) + sizeof(Timestamp) + crypto::kDigestSize;
  total += (plist_.size() + optlist_.size()) * per_entry;
  total += sizeof(Timestamp);  // write_ts
  return total;
}

}  // namespace bftbc::core
