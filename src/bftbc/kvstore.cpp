#include "bftbc/kvstore.h"

#include "crypto/sha256.h"

namespace bftbc::core {

ObjectId KvStore::object_for_key(std::string_view key) {
  const crypto::Digest d = crypto::sha256(as_bytes_view(key));
  ObjectId id = 0;
  for (int i = 0; i < 8; ++i) id = id << 8 | d[static_cast<std::size_t>(i)];
  return id;
}

void KvStore::put(std::string_view key, Bytes value, PutCallback cb) {
  client_.write(object_for_key(key), std::move(value),
                [cb = std::move(cb)](Result<Client::WriteResult> r) {
                  if (!r.is_ok()) {
                    cb(Result<PutResult>(r.status()));
                    return;
                  }
                  cb(PutResult{r.value().ts, r.value().phases});
                });
}

void KvStore::get(std::string_view key, GetCallback cb) {
  client_.read(object_for_key(key),
               [cb = std::move(cb)](Result<Client::ReadResult> r) {
                 if (!r.is_ok()) {
                   cb(Result<GetResult>(r.status()));
                   return;
                 }
                 GetResult out;
                 out.version = r.value().ts;
                 out.phases = r.value().phases;
                 if (!r.value().value.empty()) {
                   out.value = std::move(r.value().value);
                 }
                 cb(std::move(out));
               });
}

void KvStore::erase(std::string_view key, PutCallback cb) {
  put(key, Bytes{}, std::move(cb));
}

}  // namespace bftbc::core
