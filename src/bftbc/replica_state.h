// Per-object replica state and the Plist rules (paper §3.2, Figure 2).
//
// Factored out of the message-handling Replica so the state-machine rules
// — the part all of Lemma 1 rests on — are directly unit-testable:
//   - a replica never admits two different prepares for one client
//   - entries are garbage-collected only by write certificates
//   - write_ts only advances
//
// The same struct serves base, optimized and strong modes; optimized adds
// the second prepare list (optlist, §6.1).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "crypto/sha256.h"
#include "quorum/certificate.h"

namespace bftbc::core {

using quorum::ClientId;
using quorum::ObjectId;
using quorum::PrepareCertificate;
using quorum::Timestamp;
using quorum::WriteCertificate;

struct PlistEntry {
  Timestamp t;
  crypto::Digest h{};

  friend bool operator==(const PlistEntry& a, const PlistEntry& b) {
    return a.t == b.t && a.h == b.h;
  }
};

class ObjectState {
 public:
  explicit ObjectState(ObjectId object)
      : object_(object), pcert_(PrepareCertificate::genesis(object)) {}

  ObjectId object() const { return object_; }

  const Bytes& data() const { return data_; }
  const PrepareCertificate& pcert() const { return pcert_; }
  const Timestamp& write_ts() const { return write_ts_; }
  const std::map<ClientId, PlistEntry>& plist() const { return plist_; }
  const std::map<ClientId, PlistEntry>& optlist() const { return optlist_; }

  // Figure 2, phase 2, step 2: absorb a write certificate — bump
  // write_ts and garbage-collect both prepare lists. Returns the number
  // of list entries reclaimed (the replica's "gc_reclaimed" counter).
  std::size_t absorb_write_certificate(const Timestamp& wcert_ts);

  // Figure 2, phase 2, steps 3–4 for the NORMAL prepare list.
  // Returns false if the request must be discarded (conflicting entry for
  // this client); on true the entry was added if admissible (t > write_ts
  // and not already present) and the replica should send PREPARE-REPLY.
  [[nodiscard]] bool try_prepare(ClientId c, const Timestamp& t,
                                 const crypto::Digest& h);

  // Optimized protocol (§6.2 phase 1): attempt the prepare on the
  // client's behalf for the predicted timestamp succ(pcert.ts, c).
  // Fails (returns nullopt → caller sends a plain phase-1 reply) when the
  // client already has an entry in either list with a different (t, h).
  [[nodiscard]] std::optional<Timestamp> try_opt_prepare(
      ClientId c, const crypto::Digest& h);

  // Figure 2, phase 3, step 2 — plus the optimized tiebreak (§6.2
  // phase 3): equal timestamps resolve toward the larger hash.
  // Returns true if the state was overwritten.
  [[nodiscard]] bool apply_write(const Bytes& value,
                                 const PrepareCertificate& cert,
                                 bool optimized_tiebreak);

  // True if c currently occupies a slot in either prepare list.
  bool has_entry(ClientId c) const {
    return plist_.count(c) != 0 || optlist_.count(c) != 0;
  }

  // Approximate in-memory footprint, for the state-size experiment (E5).
  std::size_t state_bytes() const;

  // Releases slack capacity held by the value buffer (a prior larger
  // write leaves its allocation behind). Protocol-invisible.
  void compact();

  // Full-fidelity serialization for cold-object eviction: every field
  // the protocol can later consult — value, pcert, BOTH prepare lists,
  // write_ts — round-trips, so an evicted-and-reloaded object is
  // indistinguishable from a resident one (Lemma 1 needs the lists to
  // survive: a lurking prepare must not vanish with an eviction).
  void encode(Writer& w) const;
  static std::optional<ObjectState> decode(Reader& r);

  // Crash recovery (state transfer): rebuild one object's state from a
  // quorum of peer snapshots whose prepare certificates the CALLER has
  // already validated (cert verifies, object matches, hash covers the
  // value). The merge is Byzantine-tolerant by one-sidedness:
  //   - value + pcert: highest validated certificate wins — a faulty
  //     peer cannot fabricate a cert, only withhold a recent one, and
  //     withholding loses to any honest peer's higher cert.
  //   - prepare lists: UNION of all snapshots, first claim per client
  //     in `peers` order (pass snapshots in replica-index order for
  //     determinism). Lemma 1 only guarantees a certified prepare
  //     appears in ≥1 of any 2f+1 snapshots, so any threshold above 1
  //     forgets real prepares and breaks the lurking-write bound;
  //     fabricated entries merely make this replica refuse
  //     conservatively, which is safe.
  //   - write_ts: the (f+1)-th largest claim — at least one correct
  //     peer vouches for it, so the GC it triggers cannot erase a
  //     prepare that is still below the true completed-write frontier.
  static ObjectState recover(ObjectId object,
                             const std::vector<ObjectState>& peers,
                             std::uint32_t f);

 private:
  // Shared step-3/4 logic for one list.
  enum class ListOutcome { kConflict, kAdmitted, kAlreadyPresent, kStale };
  ListOutcome admit(std::map<ClientId, PlistEntry>& list, ClientId c,
                    const Timestamp& t, const crypto::Digest& h);

  ObjectId object_;
  Bytes data_;
  PrepareCertificate pcert_;
  std::map<ClientId, PlistEntry> plist_;
  std::map<ClientId, PlistEntry> optlist_;
  Timestamp write_ts_;
};

}  // namespace bftbc::core
