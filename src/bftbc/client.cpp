#include "bftbc/client.h"

#include <algorithm>

#include "quorum/statements.h"
#include "util/log.h"

namespace bftbc::core {

namespace {

using TsKey = std::pair<std::uint64_t, quorum::ClientId>;

TsKey ts_key(const Timestamp& t) { return {t.val, t.id}; }

// Version order: (timestamp, hash). In the base protocol two valid
// certificates never share a timestamp (Lemma 1 part 3), so the hash
// tiebreak is inert; the optimized protocol relies on it (§6.3).
bool version_less(const Timestamp& ts_a, const crypto::Digest& h_a,
                  const Timestamp& ts_b, const crypto::Digest& h_b) {
  if (ts_a != ts_b) return ts_a < ts_b;
  return crypto::compare_digests(h_a, h_b) < 0;
}

}  // namespace

// ------------------------------------------------------------ op structs

struct Client::WriteOp : OpBase {
  Bytes value;
  crypto::Digest hash{};
  WriteCallback cb;
  crypto::Nonce nonce;

  // phase-1 harvest
  std::optional<PrepareCertificate> pmax;
  std::map<TsKey, quorum::SignatureSet> strong_sigs;    // strong mode
  std::map<TsKey, quorum::SignatureSet> opt_prep_sigs;  // optimized mode

  Timestamp t;
  std::optional<WriteCertificate> wcert_to_send;
  quorum::SignatureSet prepare_sigs;  // phase-2 harvest
  std::optional<PrepareCertificate> pnew;
  quorum::SignatureSet write_sigs;  // phase-3 harvest

  std::uint64_t child_op_id = 0;  // internal read (strong fallback)

  void fail(const Status& status) override {
    if (cb) cb(Result<WriteResult>(status));
  }
};

struct Client::ReadOp : OpBase {
  ReadCallback cb;
  std::function<void(InternalReadDone)> internal_cb;
  bool force_writeback = false;
  crypto::Nonce nonce;

  // phase-1 harvest
  bool any = false;
  Bytes best_value;
  PrepareCertificate best_cert;
  std::set<std::pair<TsKey, Bytes>> versions;  // distinct (ts, hash) seen

  quorum::SignatureSet writeback_sigs;

  void fail(const Status& status) override {
    if (cb) cb(Result<ReadResult>(status));
  }
};

// ------------------------------------------------------------ lifecycle

Client::Client(const quorum::QuorumConfig& config, quorum::ClientId id,
               crypto::Keystore& keystore, rpc::Transport& transport,
               sim::Scheduler& scheduler,
               std::vector<sim::NodeId> replica_nodes, Rng rng,
               ClientOptions options)
    : config_(config),
      id_(id),
      keystore_(keystore),
      signer_(keystore.register_principal(quorum::client_principal(id))),
      transport_(transport),
      sim_(scheduler),
      replica_nodes_(std::move(replica_nodes)),
      nonces_(id, rng),
      options_(options),
      tracer_(options.tracer) {
  replica_principals_.reserve(replica_nodes_.size());
  for (std::size_t i = 0; i < replica_nodes_.size(); ++i) {
    replica_principals_.push_back(
        quorum::replica_principal(static_cast<quorum::ReplicaId>(i)));
  }
  transport_.set_receiver([this](sim::NodeId from, const rpc::Envelope& env) {
    on_envelope(from, env);
  });
  if (options_.registry != nullptr) {
    metrics::MetricsRegistry& r = *options_.registry;
    const std::string& p = options_.metrics_prefix;
    lat_.write_total = &r.summary(p + "client.write.total_ms");
    lat_.write_read_ts = &r.summary(p + "client.write.read_ts_ms");
    lat_.write_prepare = &r.summary(p + "client.write.prepare_ms");
    lat_.write_write = &r.summary(p + "client.write.write_ms");
    lat_.read_total = &r.summary(p + "client.read.total_ms");
    lat_.read_read = &r.summary(p + "client.read.read_ms");
    lat_.read_writeback = &r.summary(p + "client.read.writeback_ms");
    inflight_hist_ = &r.histogram(p + "client.inflight");
  }
}

Client::~Client() {
  for (auto& [op_id, op] : ops_) sim_.cancel(op->deadline_timer);
}

OpBase* Client::find_op(std::uint64_t id) {
  auto it = ops_.find(id);
  return it == ops_.end() ? nullptr : it->second.get();
}

bool Client::has_pending_op(ObjectId object) const {
  for (const auto& [op_id, op] : ops_) {
    if (op->object == object) return true;
  }
  return false;
}

const std::optional<WriteCertificate>& Client::last_write_cert(
    ObjectId object) const {
  static const std::optional<WriteCertificate> kNone;
  auto it = last_write_cert_.find(object);
  return it == last_write_cert_.end() ? kNone : it->second;
}

Result<Bytes> Client::sign_request(BytesView payload) const {
  if (options_.mac_auth) return signer_.mac_authenticator(replica_principals_, payload);
  return signer_.sign(payload);
}

bool Client::check_reply_auth(std::uint32_t idx, BytesView payload,
                              BytesView auth) const {
  if (options_.mac_auth) {
    return keystore_.mac_check(quorum::replica_principal(idx),
                               quorum::client_principal(id_), payload, auth);
  }
  return keystore_.verify_cached(quorum::replica_principal(idx), payload, auth);
}

rpc::Envelope Client::make_request(rpc::MsgType type, Bytes body) {
  rpc::Envelope env;
  env.type = type;
  env.rpc_id = next_rpc_id_++;
  env.sender = quorum::client_principal(id_);
  env.body = std::move(body);
  return env;
}

void Client::begin_call(OpBase& op, rpc::Envelope request,
                        rpc::QuorumCall::Validator validator,
                        std::function<void()> on_complete,
                        Summary* phase_lat, const char* phase_name) {
  if (op.call) retired_calls_.push_back(std::move(op.call));
  ++op.phases;
  if (tracer_ != nullptr && phase_name != nullptr) {
    tracer_->record(sim_.now(), metrics::TraceKind::kPhase, id_, op.op_id,
                    phase_name);
  }
  if (phase_lat != nullptr) {
    const sim::Time phase_start = sim_.now();
    on_complete = [this, phase_lat, phase_start,
                   inner = std::move(on_complete)] {
      phase_lat->add(static_cast<double>(sim_.now() - phase_start) /
                     sim::kMillisecond);
      inner();
    };
  }
  op.call = std::make_unique<rpc::QuorumCall>(
      sim_, transport_, replica_nodes_, config_.q, std::move(request),
      std::move(validator), std::move(on_complete), nullptr, options_.rpc);
}

void Client::on_envelope(sim::NodeId from, const rpc::Envelope& env) {
  // No QuorumCall frame is active here, so parked calls can die now.
  retired_calls_.clear();
  if (env.type == rpc::MsgType::kReplyBatch) {
    handle_reply_batch(from, env);
    return;
  }
  dispatch_reply(from, env);
}

void Client::dispatch_reply(sim::NodeId from, const rpc::Envelope& env) {
  for (auto& [op_id, op] : ops_) {
    if (op->call && op->call->on_reply(from, env)) return;
  }
}

// A replica that answered several of our same-tick requests bundles the
// replies under one authenticator (reply-signing amortization). Verify
// the batch MAC against the sending replica once, then dispatch each
// sub-reply; validators accept an empty per-reply `auth` only while this
// verified-batch frame is open, so a reply that skipped its own MAC is
// never accepted outside a batch that covered it.
void Client::handle_reply_batch(sim::NodeId from, const rpc::Envelope& env) {
  auto m = ReplyBatch::decode(env.body);
  if (!m.has_value()) return;
  const auto it =
      std::find(replica_nodes_.begin(), replica_nodes_.end(), from);
  if (it == replica_nodes_.end()) return;
  const auto idx =
      static_cast<ReplicaId>(it - replica_nodes_.begin());
  if (m->replica != idx) return;
  if (!check_reply_auth(idx, m->signing_payload(), m->auth)) return;
  metrics_.inc("reply_batches");
  batch_authed_ = true;
  for (const Bytes& b : m->replies) {
    auto sub = rpc::Envelope::decode(b);
    if (!sub.has_value() || sub->type == rpc::MsgType::kReplyBatch) continue;
    dispatch_reply(from, *sub);
  }
  batch_authed_ = false;
}

void Client::fail_op(std::uint64_t op_id, Status status) {
  auto it = ops_.find(op_id);
  if (it == ops_.end()) return;
  std::unique_ptr<OpBase> op = std::move(it->second);
  ops_.erase(it);
  sim_.cancel(op->deadline_timer);
  if (op->call) retired_calls_.push_back(std::move(op->call));
  // Cancel an in-flight internal read silently.
  if (auto* w = dynamic_cast<WriteOp*>(op.get()); w && w->child_op_id != 0) {
    auto child = ops_.find(w->child_op_id);
    if (child != ops_.end()) {
      sim_.cancel(child->second->deadline_timer);
      if (child->second->call)
        retired_calls_.push_back(std::move(child->second->call));
      ops_.erase(child);
    }
  }
  if (tracer_ != nullptr) {
    tracer_->record(sim_.now(), metrics::TraceKind::kOpEnd, id_, op->op_id,
                    status.message());
  }
  op->fail(status);
}

// ------------------------------------------------------------ write

void Client::write(ObjectId object, Bytes value, WriteCallback cb) {
  auto owned = std::make_unique<WriteOp>();
  WriteOp& op = *owned;
  op.op_id = next_op_id_++;
  op.object = object;
  op.value = std::move(value);
  op.hash = crypto::sha256(op.value);
  op.cb = std::move(cb);
  op.started = sim_.now();
  ops_[op.op_id] = std::move(owned);
  metrics_.inc("writes");
  if (tracer_ != nullptr) {
    tracer_->record(sim_.now(), metrics::TraceKind::kOpBegin, id_, op.op_id,
                    "write");
  }
  if (options_.op_deadline > 0) {
    const std::uint64_t op_id = op.op_id;
    op.deadline_timer = sim_.schedule(options_.op_deadline, [this, op_id] {
      fail_op(op_id, timeout_error("write deadline"));
    });
  }
  if (options_.optimized) {
    start_write_phase1_opt(op);
  } else {
    start_write_phase1(op);
  }
}

// ------------------------------------------------------ pipelined writes

void Client::submit_write(ObjectId object, Bytes value, WriteCallback cb) {
  metrics_.inc("pipelined_writes");
  PendingWrite pending;
  pending.object = object;
  pending.value = std::move(value);
  pending.cb = std::move(cb);
  write_queue_.push_back(std::move(pending));
  pump_pipeline();
}

// Fills free window slots FIFO, skipping (but never reordering within)
// objects that already have an op in flight: independent objects' phases
// overlap while each object's writes stay strictly sequential — exactly
// the ordering the per-object certificate chain requires.
void Client::pump_pipeline() {
  if (pumping_) {
    // A synchronous completion inside write() landed here; the active
    // pump below re-scans before it returns.
    repump_ = true;
    return;
  }
  pumping_ = true;
  do {
    repump_ = false;
    std::set<ObjectId> blocked;
    for (auto it = write_queue_.begin(); it != write_queue_.end();) {
      if (options_.max_inflight != 0 &&
          inflight_writes_ >= options_.max_inflight) {
        break;
      }
      if (blocked.count(it->object) != 0 || has_pending_op(it->object)) {
        blocked.insert(it->object);
        ++it;
        continue;
      }
      PendingWrite pending = std::move(*it);
      it = write_queue_.erase(it);

      ++inflight_writes_;
      if (inflight_writes_ > inflight_peak_) {
        metrics_.inc("inflight_peak", inflight_writes_ - inflight_peak_);
        inflight_peak_ = inflight_writes_;
      }
      if (inflight_hist_ != nullptr) {
        inflight_hist_->add(static_cast<std::int64_t>(inflight_writes_));
      }
      write(pending.object, std::move(pending.value),
            [this, cb = std::move(pending.cb)](Result<WriteResult> r) {
              --inflight_writes_;
              if (cb) cb(std::move(r));
              pump_pipeline();
            });
    }
  } while (repump_);
  for (PendingWrite& waiting : write_queue_) {
    if (!waiting.counted_queued) {
      waiting.counted_queued = true;
      metrics_.inc("queued_writes");
    }
  }
  pumping_ = false;
}

// Figure 1, phase 1: 〈READ-TS, nonce〉 to all replicas; wait for a quorum
// of valid replies carrying correct prepare certificates.
void Client::start_write_phase1(WriteOp& op) {
  op.nonce = nonces_.next();
  ReadTsRequest req;
  req.object = op.object;
  req.nonce = op.nonce;
  const std::uint64_t op_id = op.op_id;

  begin_call(
      op, make_request(rpc::MsgType::kReadTs, req.encode()),
      [this, op_id](std::uint32_t idx, const rpc::Envelope& env) {
        auto* op = dynamic_cast<WriteOp*>(find_op(op_id));
        if (op == nullptr || env.type != rpc::MsgType::kReadTsReply)
          return false;
        auto m = ReadTsReply::decode(env.body);
        if (!m || m->object != op->object || m->nonce != op->nonce ||
            m->replica != idx) {
          return false;
        }
        if (!(batch_authed_ && m->auth.empty()) &&
            !check_reply_auth(idx, m->signing_payload(), m->auth)) {
          return false;
        }
        if (m->pcert.object() != op->object ||
            !m->pcert.validate(config_, keystore_).is_ok()) {
          return false;
        }
        if (options_.strong && !m->strong_write_sig.empty()) {
          const Bytes stmt =
              quorum::write_reply_statement(op->object, m->pcert.ts());
          if (keystore_.verify_cached(quorum::replica_principal(idx), stmt,
                               m->strong_write_sig)) {
            op->strong_sigs[ts_key(m->pcert.ts())][idx] = m->strong_write_sig;
          }
        }
        if (!op->pmax.has_value() ||
            version_less(op->pmax->ts(), op->pmax->hash(), m->pcert.ts(),
                         m->pcert.hash())) {
          op->pmax = m->pcert;
        }
        return true;
      },
      [this, op_id] {
        if (auto* op = dynamic_cast<WriteOp*>(find_op(op_id)))
          finish_write_phase1(*op);
      },
      lat_.write_read_ts, "write/read_ts");
}

void Client::finish_write_phase1(WriteOp& op) {
  if (!options_.strong) {
    op.wcert_to_send = last_write_cert(op.object);
    start_write_phase2(op);
    return;
  }
  ensure_strong_wcert_then_phase2(op);
}

// §7.2: the PREPARE must carry a write certificate for the predecessor
// timestamp. If a quorum of phase-1 replies agreed on Pmax.ts, their
// piggybacked write-statement signatures already form it; otherwise redo
// phase 1 as a normal read with forced write-back (two extra phases).
void Client::ensure_strong_wcert_then_phase2(WriteOp& op) {
  auto it = op.strong_sigs.find(ts_key(op.pmax->ts()));
  if (it != op.strong_sigs.end() && it->second.size() >= config_.q) {
    op.wcert_to_send =
        WriteCertificate(op.object, op.pmax->ts(), it->second);
    start_write_phase2(op);
    return;
  }

  metrics_.inc("internal_reads");
  auto owned = std::make_unique<ReadOp>();
  ReadOp& child = *owned;
  child.op_id = next_op_id_++;
  child.object = op.object;
  child.force_writeback = true;
  const std::uint64_t parent_id = op.op_id;
  child.internal_cb = [this, parent_id](InternalReadDone done) {
    auto* parent = dynamic_cast<WriteOp*>(find_op(parent_id));
    if (parent == nullptr) return;  // parent already failed
    parent->child_op_id = 0;
    parent->phases += done.phases;
    parent->pmax = done.pcert;
    parent->wcert_to_send = done.wcert;
    start_write_phase2(*parent);
  };
  op.child_op_id = child.op_id;
  ops_[child.op_id] = std::move(owned);
  start_read(child);
}

// Figure 1, phase 2: 〈PREPARE, Pmax, t, h(val), Wcert〉σc; collect a
// quorum of PREPARE-REPLY statements — the new prepare certificate.
void Client::start_write_phase2(WriteOp& op) {
  op.t = op.pmax->ts().succ(id_);
  PrepareRequest req;
  req.object = op.object;
  req.t = op.t;
  req.hash = op.hash;
  req.prep_cert = *op.pmax;
  req.write_cert = op.wcert_to_send;
  req.client = id_;
  auto sig = sign_request(req.signing_payload());
  if (!sig.is_ok()) {
    fail_op(op.op_id, sig.status());  // client revoked: cannot write
    return;
  }
  req.sig = std::move(sig).take();
  const std::uint64_t op_id = op.op_id;

  begin_call(
      op, make_request(rpc::MsgType::kPrepare, req.encode()),
      [this, op_id](std::uint32_t idx, const rpc::Envelope& env) {
        auto* op = dynamic_cast<WriteOp*>(find_op(op_id));
        if (op == nullptr || env.type != rpc::MsgType::kPrepareReply)
          return false;
        auto m = PrepareReply::decode(env.body);
        if (!m || m->object != op->object || m->t != op->t ||
            m->hash != op->hash || m->replica != idx) {
          return false;
        }
        const Bytes stmt =
            quorum::prepare_reply_statement(op->object, op->t, op->hash);
        if (!keystore_.verify_cached(quorum::replica_principal(idx), stmt, m->sig))
          return false;
        op->prepare_sigs[idx] = m->sig;
        return true;
      },
      [this, op_id] {
        auto* op = dynamic_cast<WriteOp*>(find_op(op_id));
        if (op == nullptr) return;
        op->pnew = PrepareCertificate(op->object, op->t, op->hash,
                                      op->prepare_sigs);
        start_write_phase3(*op);
      },
      lat_.write_prepare, "write/prepare");
}

// Figure 1, phase 3: 〈WRITE, val, Pnew〉σc; the quorum of WRITE-REPLY
// statements becomes the write certificate retained for the next write.
void Client::start_write_phase3(WriteOp& op) {
  WriteRequest req;
  req.object = op.object;
  req.value = op.value;
  req.prep_cert = *op.pnew;
  req.client = id_;
  auto sig = sign_request(req.signing_payload());
  if (!sig.is_ok()) {
    fail_op(op.op_id, sig.status());
    return;
  }
  req.sig = std::move(sig).take();
  const std::uint64_t op_id = op.op_id;

  begin_call(
      op, make_request(rpc::MsgType::kWrite, req.encode()),
      [this, op_id](std::uint32_t idx, const rpc::Envelope& env) {
        auto* op = dynamic_cast<WriteOp*>(find_op(op_id));
        if (op == nullptr || env.type != rpc::MsgType::kWriteReply)
          return false;
        auto m = WriteReply::decode(env.body);
        if (!m || m->object != op->object || m->ts != op->t ||
            m->replica != idx) {
          return false;
        }
        const Bytes stmt = quorum::write_reply_statement(op->object, op->t);
        if (!keystore_.verify_cached(quorum::replica_principal(idx), stmt, m->sig))
          return false;
        op->write_sigs[idx] = m->sig;
        return true;
      },
      [this, op_id] {
        if (auto* op = dynamic_cast<WriteOp*>(find_op(op_id)))
          finish_write(*op);
      },
      lat_.write_write, "write/write");
}

void Client::finish_write(WriteOp& op) {
  last_write_cert_[op.object] =
      WriteCertificate(op.object, op.t, op.write_sigs);
  metrics_.inc("write_phases", static_cast<std::uint64_t>(op.phases));
  if (lat_.write_total != nullptr) {
    lat_.write_total->add(static_cast<double>(sim_.now() - op.started) /
                          sim::kMillisecond);
  }
  if (tracer_ != nullptr) {
    tracer_->record(sim_.now(), metrics::TraceKind::kOpEnd, id_, op.op_id,
                    "write/ok");
  }

  WriteResult result;
  result.ts = op.t;
  result.phases = op.phases;
  WriteCallback cb = std::move(op.cb);
  sim_.cancel(op.deadline_timer);
  if (op.call) retired_calls_.push_back(std::move(op.call));
  ops_.erase(op.op_id);
  if (cb) cb(Result<WriteResult>(result));
}

// §6.2 phase 1: 〈READ-TS-PREP, h, Wcert〉σc — replicas prepare on the
// client's behalf; a quorum agreeing on the predicted timestamp is a
// prepare certificate and the write jumps straight to phase 3.
void Client::start_write_phase1_opt(WriteOp& op) {
  op.nonce = nonces_.next();
  ReadTsPrepRequest req;
  req.object = op.object;
  req.hash = op.hash;
  req.write_cert = last_write_cert(op.object);
  req.nonce = op.nonce;
  req.client = id_;
  auto sig = sign_request(req.signing_payload());
  if (!sig.is_ok()) {
    fail_op(op.op_id, sig.status());
    return;
  }
  req.sig = std::move(sig).take();
  const std::uint64_t op_id = op.op_id;

  begin_call(
      op, make_request(rpc::MsgType::kReadTsPrep, req.encode()),
      [this, op_id](std::uint32_t idx, const rpc::Envelope& env) {
        auto* op = dynamic_cast<WriteOp*>(find_op(op_id));
        if (op == nullptr || env.type != rpc::MsgType::kReadTsPrepReply)
          return false;
        auto m = ReadTsPrepReply::decode(env.body);
        if (!m || m->object != op->object || m->nonce != op->nonce ||
            m->replica != idx) {
          return false;
        }
        if (!(batch_authed_ && m->auth.empty()) &&
            !check_reply_auth(idx, m->signing_payload(), m->auth)) {
          return false;
        }
        if (m->pcert.object() != op->object ||
            !m->pcert.validate(config_, keystore_).is_ok()) {
          return false;
        }
        if (m->prepared && m->hash == op->hash &&
            m->predicted_t.id == id_) {
          const Bytes stmt = quorum::prepare_reply_statement(
              op->object, m->predicted_t, op->hash);
          if (keystore_.verify_cached(quorum::replica_principal(idx), stmt,
                               m->prepare_sig)) {
            op->opt_prep_sigs[ts_key(m->predicted_t)][idx] = m->prepare_sig;
          }
        }
        if (options_.strong && !m->strong_write_sig.empty()) {
          const Bytes stmt =
              quorum::write_reply_statement(op->object, m->pcert.ts());
          if (keystore_.verify_cached(quorum::replica_principal(idx), stmt,
                               m->strong_write_sig)) {
            op->strong_sigs[ts_key(m->pcert.ts())][idx] = m->strong_write_sig;
          }
        }
        if (!op->pmax.has_value() ||
            version_less(op->pmax->ts(), op->pmax->hash(), m->pcert.ts(),
                         m->pcert.hash())) {
          op->pmax = m->pcert;
        }
        return true;
      },
      [this, op_id] {
        if (auto* op = dynamic_cast<WriteOp*>(find_op(op_id)))
          finish_write_phase1_opt(*op);
      },
      lat_.write_read_ts, "write/read_ts_prep");
}

void Client::finish_write_phase1_opt(WriteOp& op) {
  // Fast path: some predicted timestamp gathered a full quorum of
  // PREPARE-REPLY statements → they ARE the prepare certificate.
  for (const auto& [key, sigs] : op.opt_prep_sigs) {
    if (sigs.size() >= config_.q) {
      op.t = Timestamp{key.first, key.second};
      op.pnew = PrepareCertificate(op.object, op.t, op.hash, sigs);
      metrics_.inc("opt_fast_writes");
      start_write_phase3(op);
      return;
    }
  }
  // Slow path (§6.1's concurrent-writer example): fall back to a normal
  // phase 2 justified by the largest certificate read.
  metrics_.inc("opt_slow_writes");
  if (options_.strong) {
    ensure_strong_wcert_then_phase2(op);
  } else {
    op.wcert_to_send = last_write_cert(op.object);
    start_write_phase2(op);
  }
}

// ------------------------------------------------------------ read

void Client::read(ObjectId object, ReadCallback cb) {
  auto owned = std::make_unique<ReadOp>();
  ReadOp& op = *owned;
  op.op_id = next_op_id_++;
  op.object = object;
  op.cb = std::move(cb);
  op.started = sim_.now();
  ops_[op.op_id] = std::move(owned);
  metrics_.inc("reads");
  if (tracer_ != nullptr) {
    tracer_->record(sim_.now(), metrics::TraceKind::kOpBegin, id_, op.op_id,
                    "read");
  }
  if (options_.op_deadline > 0) {
    const std::uint64_t op_id = op.op_id;
    op.deadline_timer = sim_.schedule(options_.op_deadline, [this, op_id] {
      fail_op(op_id, timeout_error("read deadline"));
    });
  }
  start_read(op);
}

// §3.2.2 phase 1: query a quorum; accept only replies whose value matches
// a valid prepare certificate. Done in one phase when all answers agree.
void Client::start_read(ReadOp& op) {
  op.nonce = nonces_.next();
  ReadRequest req;
  req.object = op.object;
  req.nonce = op.nonce;
  if (options_.gc_in_reads) req.write_cert = last_write_cert(op.object);
  const std::uint64_t op_id = op.op_id;

  begin_call(
      op, make_request(rpc::MsgType::kRead, req.encode()),
      [this, op_id](std::uint32_t idx, const rpc::Envelope& env) {
        auto* op = dynamic_cast<ReadOp*>(find_op(op_id));
        if (op == nullptr || env.type != rpc::MsgType::kReadReply)
          return false;
        auto m = ReadReply::decode(env.body);
        if (!m || m->object != op->object || m->nonce != op->nonce ||
            m->replica != idx) {
          return false;
        }
        if (!(batch_authed_ && m->auth.empty()) &&
            !check_reply_auth(idx, m->signing_payload(), m->auth)) {
          return false;
        }
        if (m->pcert.object() != op->object ||
            !m->pcert.validate(config_, keystore_).is_ok()) {
          return false;
        }
        // The certificate must vouch for exactly this value.
        if (m->pcert.hash() != crypto::sha256(m->value)) return false;

        op->versions.insert(
            {ts_key(m->pcert.ts()),
             crypto::digest_bytes(m->pcert.hash())});
        if (!op->any || version_less(op->best_cert.ts(), op->best_cert.hash(),
                                     m->pcert.ts(), m->pcert.hash())) {
          op->any = true;
          op->best_value = m->value;
          op->best_cert = m->pcert;
        }
        return true;
      },
      [this, op_id] {
        auto* op = dynamic_cast<ReadOp*>(find_op(op_id));
        if (op == nullptr) return;
        if (op->versions.size() == 1 && !op->force_writeback) {
          finish_read(*op);
        } else {
          start_read_writeback(*op);
        }
      },
      lat_.read_read, "read/read");
}

// §3.2.2 phase 2: write back the largest (ts, value) — identical to write
// phase 3 — until 2f+1 replicas hold it.
void Client::start_read_writeback(ReadOp& op) {
  WriteRequest req;
  req.object = op.object;
  req.value = op.best_value;
  req.prep_cert = op.best_cert;
  req.client = id_;
  auto sig = sign_request(req.signing_payload());
  if (!sig.is_ok()) {
    fail_op(op.op_id, sig.status());
    return;
  }
  req.sig = std::move(sig).take();
  const std::uint64_t op_id = op.op_id;
  const Timestamp expect_ts = op.best_cert.ts();

  begin_call(
      op, make_request(rpc::MsgType::kWrite, req.encode()),
      [this, op_id, expect_ts](std::uint32_t idx, const rpc::Envelope& env) {
        auto* op = dynamic_cast<ReadOp*>(find_op(op_id));
        if (op == nullptr || env.type != rpc::MsgType::kWriteReply)
          return false;
        auto m = WriteReply::decode(env.body);
        if (!m || m->object != op->object || m->ts != expect_ts ||
            m->replica != idx) {
          return false;
        }
        const Bytes stmt =
            quorum::write_reply_statement(op->object, expect_ts);
        if (!keystore_.verify_cached(quorum::replica_principal(idx), stmt, m->sig))
          return false;
        op->writeback_sigs[idx] = m->sig;
        return true;
      },
      [this, op_id] {
        if (auto* op = dynamic_cast<ReadOp*>(find_op(op_id)))
          finish_read(*op);
      },
      lat_.read_writeback, "read/writeback");
}

void Client::finish_read(ReadOp& op) {
  metrics_.inc("read_phases", static_cast<std::uint64_t>(op.phases));
  // Internal (strong-fallback) reads never went through read(): they have
  // no start time and are not client-visible ops, so no total latency.
  if (!op.internal_cb) {
    if (lat_.read_total != nullptr) {
      lat_.read_total->add(static_cast<double>(sim_.now() - op.started) /
                           sim::kMillisecond);
    }
    if (tracer_ != nullptr) {
      tracer_->record(sim_.now(), metrics::TraceKind::kOpEnd, id_, op.op_id,
                      "read/ok");
    }
  }

  sim_.cancel(op.deadline_timer);
  if (op.call) retired_calls_.push_back(std::move(op.call));

  if (op.internal_cb) {
    InternalReadDone done;
    done.value = std::move(op.best_value);
    done.pcert = op.best_cert;
    done.wcert =
        WriteCertificate(op.object, op.best_cert.ts(), op.writeback_sigs);
    done.phases = op.phases;
    auto internal_cb = std::move(op.internal_cb);
    ops_.erase(op.op_id);
    internal_cb(std::move(done));
    return;
  }

  ReadResult result;
  result.value = std::move(op.best_value);
  result.ts = op.best_cert.ts();
  result.hash = op.best_cert.hash();
  result.phases = op.phases;
  ReadCallback cb = std::move(op.cb);
  ops_.erase(op.op_id);
  if (cb) cb(Result<ReadResult>(std::move(result)));
}

}  // namespace bftbc::core
