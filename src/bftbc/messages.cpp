#include "bftbc/messages.h"

namespace bftbc::core {

namespace {

// Encode a certificate into a length-prefixed blob so decoders can skip
// or isolate it.
template <typename Cert>
void put_cert(Writer& w, const Cert& cert) {
  Writer inner;
  cert.encode(inner);
  w.put_bytes(inner.data());
}

template <typename Cert>
Cert get_cert(Reader& r) {
  const Bytes blob = r.get_bytes();
  Reader inner(blob);
  Cert cert = Cert::decode(inner);
  // The inner decode's verdict must reach the outer message parse: a
  // truncated blob or one with trailing garbage is a malformed message,
  // not a default-initialized certificate.
  if (!inner.done()) r.fail();
  return cert;
}

void put_digest(Writer& w, const crypto::Digest& d) {
  w.put_raw(crypto::digest_view(d));
}

crypto::Digest get_digest(Reader& r) {
  crypto::Digest d{};
  crypto::digest_from_bytes(r.get_raw(crypto::kDigestSize), d);
  return d;
}

}  // namespace

void encode_optional_wcert(Writer& w,
                           const std::optional<WriteCertificate>& c) {
  w.put_bool(c.has_value());
  if (c.has_value()) put_cert(w, *c);
}

std::optional<WriteCertificate> decode_optional_wcert(Reader& r) {
  if (!r.get_bool()) return std::nullopt;
  return get_cert<WriteCertificate>(r);
}

// ----------------------------------------------------------- READ-TS

Bytes ReadTsRequest::encode() const {
  Writer w;
  w.put_u64(object);
  nonce.encode(w);
  return std::move(w).take();
}

std::optional<ReadTsRequest> ReadTsRequest::decode(BytesView b) {
  Reader r(b);
  ReadTsRequest m;
  m.object = r.get_u64();
  m.nonce = crypto::Nonce::decode(r);
  if (!r.done()) return std::nullopt;
  return m;
}

Bytes ReadTsReply::signing_payload() const {
  Writer w;
  w.put_u8(static_cast<std::uint8_t>(AuthTag::kReadTsReply));
  w.put_u64(object);
  nonce.encode(w);
  put_cert(w, pcert);
  w.put_bytes(strong_write_sig);
  return std::move(w).take();
}

Bytes ReadTsReply::encode() const {
  Writer w;
  w.put_u64(object);
  nonce.encode(w);
  put_cert(w, pcert);
  w.put_bytes(strong_write_sig);
  w.put_u32(replica);
  w.put_bytes(auth);
  return std::move(w).take();
}

std::optional<ReadTsReply> ReadTsReply::decode(BytesView b) {
  Reader r(b);
  ReadTsReply m;
  m.object = r.get_u64();
  m.nonce = crypto::Nonce::decode(r);
  m.pcert = get_cert<PrepareCertificate>(r);
  m.strong_write_sig = r.get_bytes();
  m.replica = r.get_u32();
  m.auth = r.get_bytes();
  if (!r.done()) return std::nullopt;
  return m;
}

// ----------------------------------------------------------- PREPARE

Bytes PrepareRequest::signing_payload() const {
  Writer w;
  w.put_u8(static_cast<std::uint8_t>(AuthTag::kPrepare));
  w.put_u64(object);
  t.encode(w);
  put_digest(w, hash);
  put_cert(w, prep_cert);
  encode_optional_wcert(w, write_cert);
  w.put_u32(client);
  return std::move(w).take();
}

Bytes PrepareRequest::encode() const {
  Writer w;
  w.put_u64(object);
  t.encode(w);
  put_digest(w, hash);
  put_cert(w, prep_cert);
  encode_optional_wcert(w, write_cert);
  w.put_u32(client);
  w.put_bytes(sig);
  return std::move(w).take();
}

std::optional<PrepareRequest> PrepareRequest::decode(BytesView b) {
  Reader r(b);
  PrepareRequest m;
  m.object = r.get_u64();
  m.t = Timestamp::decode(r);
  m.hash = get_digest(r);
  m.prep_cert = get_cert<PrepareCertificate>(r);
  m.write_cert = decode_optional_wcert(r);
  m.client = r.get_u32();
  m.sig = r.get_bytes();
  if (!r.done()) return std::nullopt;
  return m;
}

Bytes PrepareReply::encode() const {
  Writer w;
  w.put_u64(object);
  t.encode(w);
  put_digest(w, hash);
  w.put_u32(replica);
  w.put_bytes(sig);
  return std::move(w).take();
}

std::optional<PrepareReply> PrepareReply::decode(BytesView b) {
  Reader r(b);
  PrepareReply m;
  m.object = r.get_u64();
  m.t = Timestamp::decode(r);
  m.hash = get_digest(r);
  m.replica = r.get_u32();
  m.sig = r.get_bytes();
  if (!r.done()) return std::nullopt;
  return m;
}

// ----------------------------------------------------------- WRITE

Bytes WriteRequest::signing_payload() const {
  Writer w;
  w.put_u8(static_cast<std::uint8_t>(AuthTag::kWrite));
  w.put_u64(object);
  // Sign the digest, not the value: identical security (the certificate
  // already binds the digest) and keeps signing cost value-size-free.
  put_digest(w, crypto::sha256(value));
  put_cert(w, prep_cert);
  w.put_u32(client);
  return std::move(w).take();
}

Bytes WriteRequest::encode() const {
  Writer w;
  w.put_u64(object);
  w.put_bytes(value);
  put_cert(w, prep_cert);
  w.put_u32(client);
  w.put_bytes(sig);
  return std::move(w).take();
}

std::optional<WriteRequest> WriteRequest::decode(BytesView b) {
  Reader r(b);
  WriteRequest m;
  m.object = r.get_u64();
  m.value = r.get_bytes();
  m.prep_cert = get_cert<PrepareCertificate>(r);
  m.client = r.get_u32();
  m.sig = r.get_bytes();
  if (!r.done()) return std::nullopt;
  return m;
}

Bytes WriteReply::encode() const {
  Writer w;
  w.put_u64(object);
  ts.encode(w);
  w.put_u32(replica);
  w.put_bytes(sig);
  return std::move(w).take();
}

std::optional<WriteReply> WriteReply::decode(BytesView b) {
  Reader r(b);
  WriteReply m;
  m.object = r.get_u64();
  m.ts = Timestamp::decode(r);
  m.replica = r.get_u32();
  m.sig = r.get_bytes();
  if (!r.done()) return std::nullopt;
  return m;
}

// ----------------------------------------------------------- READ

Bytes ReadRequest::encode() const {
  Writer w;
  w.put_u64(object);
  nonce.encode(w);
  encode_optional_wcert(w, write_cert);
  return std::move(w).take();
}

std::optional<ReadRequest> ReadRequest::decode(BytesView b) {
  Reader r(b);
  ReadRequest m;
  m.object = r.get_u64();
  m.nonce = crypto::Nonce::decode(r);
  m.write_cert = decode_optional_wcert(r);
  if (!r.done()) return std::nullopt;
  return m;
}

Bytes ReadReply::signing_payload() const {
  Writer w;
  w.put_u8(static_cast<std::uint8_t>(AuthTag::kReadReply));
  w.put_u64(object);
  nonce.encode(w);
  put_digest(w, crypto::sha256(value));
  put_cert(w, pcert);
  return std::move(w).take();
}

Bytes ReadReply::encode() const {
  Writer w;
  w.put_u64(object);
  w.put_bytes(value);
  put_cert(w, pcert);
  nonce.encode(w);
  w.put_u32(replica);
  w.put_bytes(auth);
  return std::move(w).take();
}

std::optional<ReadReply> ReadReply::decode(BytesView b) {
  Reader r(b);
  ReadReply m;
  m.object = r.get_u64();
  m.value = r.get_bytes();
  m.pcert = get_cert<PrepareCertificate>(r);
  m.nonce = crypto::Nonce::decode(r);
  m.replica = r.get_u32();
  m.auth = r.get_bytes();
  if (!r.done()) return std::nullopt;
  return m;
}

// ----------------------------------------------------------- READ-TS-PREP

Bytes ReadTsPrepRequest::signing_payload() const {
  Writer w;
  w.put_u8(static_cast<std::uint8_t>(AuthTag::kReadTsPrep));
  w.put_u64(object);
  put_digest(w, hash);
  encode_optional_wcert(w, write_cert);
  w.put_u32(client);
  return std::move(w).take();
}

Bytes ReadTsPrepRequest::encode() const {
  Writer w;
  w.put_u64(object);
  put_digest(w, hash);
  encode_optional_wcert(w, write_cert);
  nonce.encode(w);
  w.put_u32(client);
  w.put_bytes(sig);
  return std::move(w).take();
}

std::optional<ReadTsPrepRequest> ReadTsPrepRequest::decode(BytesView b) {
  Reader r(b);
  ReadTsPrepRequest m;
  m.object = r.get_u64();
  m.hash = get_digest(r);
  m.write_cert = decode_optional_wcert(r);
  m.nonce = crypto::Nonce::decode(r);
  m.client = r.get_u32();
  m.sig = r.get_bytes();
  if (!r.done()) return std::nullopt;
  return m;
}

Bytes ReadTsPrepReply::signing_payload() const {
  Writer w;
  w.put_u8(static_cast<std::uint8_t>(AuthTag::kReadTsPrepReply));
  w.put_u64(object);
  nonce.encode(w);
  put_cert(w, pcert);
  w.put_bool(prepared);
  predicted_t.encode(w);
  put_digest(w, hash);
  w.put_bytes(prepare_sig);
  w.put_bytes(strong_write_sig);
  return std::move(w).take();
}

Bytes ReadTsPrepReply::encode() const {
  Writer w;
  w.put_u64(object);
  nonce.encode(w);
  put_cert(w, pcert);
  w.put_bool(prepared);
  predicted_t.encode(w);
  put_digest(w, hash);
  w.put_bytes(prepare_sig);
  w.put_bytes(strong_write_sig);
  w.put_u32(replica);
  w.put_bytes(auth);
  return std::move(w).take();
}

std::optional<ReadTsPrepReply> ReadTsPrepReply::decode(BytesView b) {
  Reader r(b);
  ReadTsPrepReply m;
  m.object = r.get_u64();
  m.nonce = crypto::Nonce::decode(r);
  m.pcert = get_cert<PrepareCertificate>(r);
  m.prepared = r.get_bool();
  m.predicted_t = Timestamp::decode(r);
  m.hash = get_digest(r);
  m.prepare_sig = r.get_bytes();
  m.strong_write_sig = r.get_bytes();
  m.replica = r.get_u32();
  m.auth = r.get_bytes();
  if (!r.done()) return std::nullopt;
  return m;
}

// -------------------------------------------------------- REPLY-BATCH

Bytes ReplyBatch::signing_payload() const {
  Writer w;
  w.put_u8(static_cast<std::uint8_t>(AuthTag::kReplyBatch));
  w.put_u32(replica);
  w.put_u32(static_cast<std::uint32_t>(replies.size()));
  for (const Bytes& b : replies) w.put_bytes(b);
  return std::move(w).take();
}

Bytes ReplyBatch::encode() const {
  Writer w;
  w.put_u32(replica);
  w.put_u32(static_cast<std::uint32_t>(replies.size()));
  for (const Bytes& b : replies) w.put_bytes(b);
  w.put_bytes(auth);
  return std::move(w).take();
}

std::optional<ReplyBatch> ReplyBatch::decode(BytesView b) {
  Reader r(b);
  ReplyBatch m;
  m.replica = r.get_u32();
  const std::uint32_t count = r.get_u32();
  for (std::uint32_t i = 0; i < count && r.ok(); ++i) {
    m.replies.push_back(r.get_bytes());
  }
  m.auth = r.get_bytes();
  if (!r.done()) return std::nullopt;
  return m;
}

// --------------------------------------------------------- STATE-XFER

Bytes StateXferRequest::encode() const {
  Writer w;
  w.put_u64(object);
  nonce.encode(w);
  return std::move(w).take();
}

std::optional<StateXferRequest> StateXferRequest::decode(BytesView b) {
  Reader r(b);
  StateXferRequest m;
  m.object = r.get_u64();
  m.nonce = crypto::Nonce::decode(r);
  if (!r.done()) return std::nullopt;
  return m;
}

Bytes StateXferReply::encode() const {
  Writer w;
  w.put_u64(object);
  nonce.encode(w);
  w.put_bytes(state);
  w.put_u32(replica);
  return std::move(w).take();
}

std::optional<StateXferReply> StateXferReply::decode(BytesView b) {
  Reader r(b);
  StateXferReply m;
  m.object = r.get_u64();
  m.nonce = crypto::Nonce::decode(r);
  m.state = r.get_bytes();
  m.replica = r.get_u32();
  if (!r.done()) return std::nullopt;
  return m;
}

}  // namespace bftbc::core
