#include "bftbc/replica.h"

#include <algorithm>

#include "quorum/statements.h"
#include "util/log.h"

namespace bftbc::core {

Replica::Replica(const quorum::QuorumConfig& config, ReplicaId id,
                 crypto::Keystore& keystore, rpc::Transport& transport,
                 sim::Scheduler& scheduler, ReplicaOptions options)
    : config_(config),
      id_(id),
      keystore_(keystore),
      signer_(keystore.register_principal(quorum::replica_principal(id))),
      transport_(transport),
      sim_(scheduler),
      options_(options) {
  transport_.set_receiver([this](sim::NodeId from, const rpc::Envelope& env) {
    deliver(from, env);
  });
  if (options_.registry != nullptr) {
    metrics::MetricsRegistry& r = *options_.registry;
    metrics::MetricsRegistry::Scope scope = r.scoped(
        options_.metrics_scope.empty() ? "replica/" + std::to_string(id_)
                                       : options_.metrics_scope);
    grants_ = &scope.counter("grants");
    rejects_ = &scope.counter("rejects");
    resident_gauge_ = &scope.gauge("resident_objects");
    plist_size_ = &r.histogram("replica.plist_size");
    optlist_size_ = &r.histogram("replica.optlist_size");
  }
}

Replica::~Replica() {
  // A pending flush captures `this`; never let it fire into a dead
  // replica if the simulator outlives us.
  if (flush_scheduled_) sim_.cancel(flush_timer_);
}

void Replica::deliver(sim::NodeId from, const rpc::Envelope& env) {
  if (!options_.batch_verify) {
    on_envelope(from, env);
    return;
  }
  pending_batch_.push_back(PendingEnvelope{from, env});
  if (!flush_scheduled_) {
    flush_scheduled_ = true;
    // Delay 0 fires after every delivery already queued for this instant
    // (the simulator breaks timestamp ties FIFO), so one flush drains
    // the whole tick's arrivals — deterministically, keyed to sim time.
    flush_timer_ = sim_.schedule(0, [this] { flush_batch(); });
  }
}

void Replica::flush_batch() {
  flush_scheduled_ = false;
  std::vector<PendingEnvelope> batch;
  batch.swap(pending_batch_);
  if (batch.empty()) return;

  metrics_.inc("batch_flushes");
  metrics_.inc("batch_verify_msgs", batch.size());

  // Pre-verification: one sorted, cache-aware keystore pass over every
  // signature the batch will need. The handlers below still route their
  // checks through verify_cached and now hit the warmed cache — the
  // accept/reject decisions are bit-identical to per-message processing.
  std::vector<crypto::Keystore::VerifyItem> items;
  for (const PendingEnvelope& p : batch) collect_verify_items(p.env, items);
  if (!items.empty()) {
    metrics_.inc("batch_verify_sigs", keystore_.verify_batch(items));
  }

  // Reply-signing amortization: when one node contributed two or more
  // point-to-point-authenticated requests to this batch, the replies to
  // it are captured and shipped as a single ReplyBatch under one
  // authenticator (handlers skip the per-reply MAC for those).
  batch_auth_counts_.clear();
  batch_auth_principal_.clear();
  for (const PendingEnvelope& p : batch) {
    switch (p.env.type) {
      case rpc::MsgType::kReadTs:
      case rpc::MsgType::kRead:
        ++batch_auth_counts_[p.from];
        batch_auth_principal_[p.from] = p.env.sender;
        break;
      case rpc::MsgType::kReadTsPrep:
        if (options_.optimized) {
          ++batch_auth_counts_[p.from];
          batch_auth_principal_[p.from] = p.env.sender;
        }
        break;
      default:
        // Only the client request types above contribute to the batch
        // reply-auth accounting; everything else in the batch is
        // dispatched unchanged by on_envelope below.
        break;
    }
  }

  collecting_replies_ = true;
  current_batch_size_ = batch.size();
  for (const PendingEnvelope& p : batch) on_envelope(p.from, p.env);
  current_batch_size_ = 0;
  collecting_replies_ = false;
  flush_replies();
  batch_auth_counts_.clear();
  batch_auth_principal_.clear();
}

bool Replica::amortized_auth_for(sim::NodeId to) const {
  if (!collecting_replies_) return false;
  auto it = batch_auth_counts_.find(to);
  return it != batch_auth_counts_.end() && it->second >= 2;
}

void Replica::flush_replies() {
  if (pending_replies_.empty()) return;
  std::map<sim::NodeId, std::vector<PendingReply>> by_dest;
  for (PendingReply& p : pending_replies_) {
    by_dest[p.to].push_back(std::move(p));
  }
  pending_replies_.clear();
  for (auto& [to, group] : by_dest) {
    ReplyBatch rb;
    rb.replica = id_;
    sim::Time cost = 0;
    for (const PendingReply& p : group) {
      rb.replies.push_back(p.env.encode());
      cost = std::max(cost, p.cost);
    }
    rb.auth = p2p_auth(batch_auth_principal_[to], rb.signing_payload(), cost);
    metrics_.inc("reply_batches");
    rpc::Envelope env;
    env.type = rpc::MsgType::kReplyBatch;
    env.sender = quorum::replica_principal(id_);
    env.body = rb.encode();
    const sim::Time delay = charge_processing(cost);
    if (delay == 0) {
      transport_.send(to, env);
    } else {
      sim_.schedule(delay,
                    [this, to, env = std::move(env)] { transport_.send(to, env); });
    }
  }
}

void Replica::collect_verify_items(
    const rpc::Envelope& env,
    std::vector<crypto::Keystore::VerifyItem>& items) const {
  auto add = [&items](crypto::PrincipalId principal, Bytes stmt, Bytes sig) {
    crypto::Keystore::VerifyItem item;
    item.principal = principal;
    item.statement = std::move(stmt);
    item.sig = std::move(sig);
    items.push_back(std::move(item));
  };
  auto add_client_sig = [&](quorum::ClientId client, Bytes payload,
                            const Bytes& sig) {
    // MAC authenticators are checked inline by verify_client_sig (a
    // cheap HMAC slice, nothing to pre-warm or cache).
    if (options_.mac_auth) return;
    if (quorum::is_replica_principal(client)) return;
    add(quorum::client_principal(client), std::move(payload), sig);
  };
  auto add_prep_cert = [&](const PrepareCertificate& cert) {
    if (cert.is_genesis()) return;
    const Bytes stmt =
        quorum::prepare_reply_statement(cert.object(), cert.ts(), cert.hash());
    for (const auto& [replica, sig] : cert.signatures()) {
      if (!config_.valid_replica(replica)) continue;
      add(quorum::replica_principal(replica), stmt, sig);
    }
  };
  auto add_write_cert = [&](const WriteCertificate& cert) {
    const Bytes stmt = quorum::write_reply_statement(cert.object(), cert.ts());
    for (const auto& [replica, sig] : cert.signatures()) {
      if (!config_.valid_replica(replica)) continue;
      add(quorum::replica_principal(replica), stmt, sig);
    }
  };

  switch (env.type) {
    case rpc::MsgType::kPrepare: {
      auto req = PrepareRequest::decode(env.body);
      if (!req.has_value()) return;
      add_client_sig(req->client, req->signing_payload(), req->sig);
      add_prep_cert(req->prep_cert);
      if (req->write_cert.has_value()) add_write_cert(*req->write_cert);
      break;
    }
    case rpc::MsgType::kWrite: {
      auto req = WriteRequest::decode(env.body);
      if (!req.has_value()) return;
      add_client_sig(req->client, req->signing_payload(), req->sig);
      add_prep_cert(req->prep_cert);
      break;
    }
    case rpc::MsgType::kRead: {
      auto req = ReadRequest::decode(env.body);
      if (!req.has_value()) return;
      if (req->write_cert.has_value()) add_write_cert(*req->write_cert);
      break;
    }
    case rpc::MsgType::kReadTsPrep: {
      if (!options_.optimized) return;
      auto req = ReadTsPrepRequest::decode(env.body);
      if (!req.has_value()) return;
      add_client_sig(req->client, req->signing_payload(), req->sig);
      if (req->write_cert.has_value()) add_write_cert(*req->write_cert);
      break;
    }
    default:
      // READ-TS and unknown types verify nothing up front.
      break;
  }
}

void Replica::granted(const char* counter) {
  metrics_.inc(counter);
  if (grants_ != nullptr) grants_->inc();
}

void Replica::dropped(const char* counter) {
  metrics_.inc(counter);
  if (rejects_ != nullptr) rejects_->inc();
}

void Replica::record_list_sizes(const ObjectState& state) {
  if (plist_size_ != nullptr) {
    plist_size_->add(static_cast<std::int64_t>(state.plist().size()));
  }
  if (optlist_size_ != nullptr && options_.optimized) {
    optlist_size_->add(static_cast<std::int64_t>(state.optlist().size()));
  }
}

void Replica::touch_lru(ObjectId id) {
  if (options_.max_resident_objects == 0) return;
  auto pos = lru_pos_.find(id);
  if (pos != lru_pos_.end()) lru_.erase(pos->second);
  lru_.push_front(id);
  lru_pos_[id] = lru_.begin();
}

void Replica::enforce_resident_cap(ObjectId keep) {
  const std::size_t cap = options_.max_resident_objects;
  if (cap == 0) return;
  while (objects_.size() > cap && !lru_.empty()) {
    // Coldest first; never the object the current handler holds a
    // reference to.
    ObjectId victim = lru_.back();
    if (victim == keep) {
      if (lru_.size() < 2) break;
      victim = *std::next(lru_.rbegin());
    }
    auto it = objects_.find(victim);
    if (it != objects_.end()) {
      Writer w;
      it->second.encode(w);
      cold_store_[victim] = std::move(w).take();
      objects_.erase(it);
      metrics_.inc("objects_evicted");
    }
    auto pos = lru_pos_.find(victim);
    if (pos != lru_pos_.end()) {
      lru_.erase(pos->second);
      lru_pos_.erase(pos);
    }
  }
  if (resident_gauge_ != nullptr) {
    resident_gauge_->set(static_cast<double>(objects_.size()));
  }
}

ObjectState& Replica::object(ObjectId id) {
  auto it = objects_.find(id);
  if (it == objects_.end()) {
    auto cold = cold_store_.find(id);
    if (cold != cold_store_.end()) {
      Reader r(cold->second);
      std::optional<ObjectState> state = ObjectState::decode(r);
      // The store only ever holds blobs this replica encoded itself, so
      // a decode failure is a harness bug; fall back to a fresh object
      // rather than crash (the write certificate chain re-establishes
      // state via the protocol).
      if (state.has_value() && r.done()) {
        it = objects_.emplace(id, std::move(*state)).first;
        metrics_.inc("objects_reloaded");
      }
      cold_store_.erase(cold);
    }
    if (it == objects_.end()) {
      it = objects_.emplace(id, ObjectState(id)).first;
    }
    touch_lru(id);
    enforce_resident_cap(id);
  } else {
    touch_lru(id);
  }
  return it->second;
}

void Replica::absorb_and_gc(ObjectState& state, const Timestamp& wcert_ts) {
  const std::size_t reclaimed = state.absorb_write_certificate(wcert_ts);
  if (reclaimed != 0) metrics_.inc("gc_reclaimed", reclaimed);
  state.compact();
  // Precomputed WRITE-REPLY signatures at or below the certified
  // timestamp can never be needed again: the certificate proves those
  // writes completed, and write_ts now rejects their prepares anyway.
  const ObjectId object = state.object();
  const auto begin = write_sig_cache_.lower_bound(
      std::make_pair(object, std::make_pair(std::uint64_t{0}, ClientId{0})));
  std::size_t dropped_sigs = 0;
  for (auto it = begin;
       it != write_sig_cache_.end() && it->first.first == object;) {
    const Timestamp ts{it->first.second.first, it->first.second.second};
    if (ts <= state.write_ts()) {
      it = write_sig_cache_.erase(it);
      ++dropped_sigs;
    } else {
      ++it;
    }
  }
  if (dropped_sigs != 0) metrics_.inc("sig_cache_gc", dropped_sigs);
}

const ObjectState* Replica::find_object(ObjectId id) const {
  auto it = objects_.find(id);
  return it == objects_.end() ? nullptr : &it->second;
}

void Replica::on_envelope(sim::NodeId from, const rpc::Envelope& env) {
  // A recovering replica must not serve the client protocol: granting a
  // prepare before its prepare lists are rebuilt could conflict with a
  // forgotten entry (the Lemma 1 memory recovery exists to restore).
  // State-transfer traffic still flows — serving snapshots to OTHER
  // recovering peers is safe (its snapshot is merely conservative), and
  // its own recovery replies must get through. Clients retransmit, so a
  // dropped request costs latency, not liveness.
  if (!recovery_calls_.empty() && env.type != rpc::MsgType::kStateXfer &&
      env.type != rpc::MsgType::kStateXferReply) {
    dropped("drop_recovering");
    return;
  }
  switch (env.type) {
    case rpc::MsgType::kReadTs:
      handle_read_ts(from, env);
      break;
    case rpc::MsgType::kPrepare:
      handle_prepare(from, env);
      break;
    case rpc::MsgType::kWrite:
      handle_write(from, env);
      break;
    case rpc::MsgType::kRead:
      handle_read(from, env);
      break;
    case rpc::MsgType::kReadTsPrep:
      if (options_.optimized) handle_read_ts_prep(from, env);
      break;
    case rpc::MsgType::kStateXfer:
      handle_state_xfer(from, env);
      break;
    case rpc::MsgType::kStateXferReply:
      route_recovery_reply(from, env);
      break;
    default:
      dropped("drop_unknown_type");
      break;
  }
}

sim::Time Replica::charge_processing(sim::Time cost) {
  if (!options_.serialize_processing) return cost;
  const sim::Time now = sim_.now();
  const sim::Time start = std::max(now, busy_until_);
  busy_until_ = start + cost;
  return busy_until_ - now;
}

void Replica::reply(sim::NodeId to, rpc::MsgType type, std::uint64_t rpc_id,
                    Bytes body, sim::Time processing_cost) {
  // Replies emitted while dispatching a multi-message batch shared one
  // verification pass; "batched_replies" measures that amortization.
  if (current_batch_size_ >= 2) metrics_.inc("batched_replies");
  rpc::Envelope env;
  env.type = type;
  env.rpc_id = rpc_id;
  env.sender = quorum::replica_principal(id_);
  env.body = std::move(body);
  // Replies whose per-reply authenticator was amortized away travel in
  // the batch's single ReplyBatch instead of as individual messages.
  if (amortized_auth_for(to) && (type == rpc::MsgType::kReadTsReply ||
                                 type == rpc::MsgType::kReadReply ||
                                 type == rpc::MsgType::kReadTsPrepReply)) {
    pending_replies_.push_back(
        PendingReply{to, std::move(env), processing_cost});
    return;
  }
  const sim::Time delay = charge_processing(processing_cost);
  if (delay == 0) {
    transport_.send(to, env);
  } else {
    sim_.schedule(delay,
                  [this, to, env = std::move(env)] { transport_.send(to, env); });
  }
}

Bytes Replica::sign_statement_foreground(BytesView stmt, sim::Time& cost) {
  metrics_.inc("sig_foreground");
  cost += options_.sign_cost;
  auto sig = signer_.sign(stmt);
  return sig.is_ok() ? std::move(sig).take() : Bytes{};
}

Bytes Replica::p2p_auth(crypto::PrincipalId to, BytesView payload,
                        sim::Time& cost) {
  // Point-to-point authenticator (§3.3.2); charged as negligible
  // virtual time either way — mac_auth additionally removes the real
  // public-key work in kRsa deployments.
  metrics_.inc("auth_p2p");
  (void)cost;
  auto sig = options_.mac_auth ? signer_.mac(to, payload)
                               : signer_.sign(payload);
  return sig.is_ok() ? std::move(sig).take() : Bytes{};
}

Bytes Replica::write_sig_for(ObjectId object, const Timestamp& ts,
                             sim::Time& cost) {
  const auto key = std::make_pair(object, std::make_pair(ts.val, ts.id));
  auto it = write_sig_cache_.find(key);
  if (it != write_sig_cache_.end()) {
    metrics_.inc("sig_background_hit");
    return it->second;
  }
  return sign_statement_foreground(
      quorum::write_reply_statement(object, ts), cost);
}

bool Replica::verify_client_sig(quorum::ClientId client, BytesView payload,
                                BytesView sig, sim::Time& cost) {
  metrics_.inc("verify_client");
  if (quorum::is_replica_principal(client)) return false;
  if (options_.mac_auth) {
    // The request carries an n-tag authenticator; this replica checks
    // its own slice. No verify_cost charge — that is the point of the
    // paper's MAC cost model.
    constexpr std::size_t kTag = crypto::Keystore::kMacSize;
    if (sig.size() != static_cast<std::size_t>(config_.n) * kTag) return false;
    return keystore_.mac_check(quorum::client_principal(client),
                               quorum::replica_principal(id_), payload,
                               sig.subspan(id_ * kTag, kTag));
  }
  cost += options_.verify_cost;
  return keystore_.verify_cached(quorum::client_principal(client), payload, sig);
}

bool Replica::valid_prepare_cert(const PrepareCertificate& cert,
                                 ObjectId object, sim::Time& cost) {
  if (cert.object() != object) return false;
  // Verifying a certificate = up to q signature verifications.
  cost += options_.verify_cost * cert.signatures().size();
  metrics_.inc("verify_cert");
  return cert.validate(config_, keystore_).is_ok();
}

bool Replica::valid_write_cert(const WriteCertificate& cert, ObjectId object,
                               sim::Time& cost) {
  if (cert.object() != object) return false;
  cost += options_.verify_cost * cert.signatures().size();
  metrics_.inc("verify_cert");
  return cert.validate(config_, keystore_).is_ok();
}

// ------------------------------------------------------------ phase 1

void Replica::handle_read_ts(sim::NodeId from, const rpc::Envelope& env) {
  auto req = ReadTsRequest::decode(env.body);
  if (!req.has_value()) {
    dropped("drop_malformed");
    return;
  }
  ObjectState& state = object(req->object);
  sim::Time cost = 0;

  ReadTsReply rep;
  rep.object = req->object;
  rep.nonce = req->nonce;
  rep.pcert = state.pcert();
  if (options_.strong) {
    // §7: phase-1 reply doubles as a write-certificate component for the
    // replica's current timestamp.
    rep.strong_write_sig = sign_statement_foreground(
        quorum::write_reply_statement(req->object, state.pcert().ts()), cost);
  }
  rep.replica = id_;
  if (amortized_auth_for(from)) {
    metrics_.inc("auth_p2p_amortized");
  } else {
    rep.auth = p2p_auth(env.sender, rep.signing_payload(), cost);
  }

  granted("reply_read_ts");
  reply(from, rpc::MsgType::kReadTsReply, env.rpc_id, rep.encode(), cost);
}

// ------------------------------------------------------------ phase 2

void Replica::handle_prepare(sim::NodeId from, const rpc::Envelope& env) {
  auto req = PrepareRequest::decode(env.body);
  if (!req.has_value()) {
    dropped("drop_malformed");
    return;
  }
  ObjectState& state = object(req->object);
  sim::Time cost = 0;

  // Figure 2 phase 2 step 1: authentication and certificate checks; the
  // request is discarded (no reply) on any failure. New writes are
  // gated by the ACL; WRITE itself is not (a valid prepare certificate
  // proves a then-authorized client prepared it — and a write-back /
  // colluder replay carries exactly such a certificate).
  if (!is_authorized(req->client)) {
    dropped("drop_unauthorized");
    return;
  }
  if (!verify_client_sig(req->client, req->signing_payload(), req->sig,
                         cost)) {
    dropped("drop_bad_auth");
    return;
  }
  if (!valid_prepare_cert(req->prep_cert, req->object, cost)) {
    dropped("drop_bad_cert");
    return;
  }
  if (req->write_cert.has_value() &&
      !valid_write_cert(*req->write_cert, req->object, cost)) {
    dropped("drop_bad_cert");
    return;
  }
  // t must be the successor of the justifying certificate's timestamp —
  // this is what makes timestamp-space exhaustion impossible (§3.2).
  if (req->t != req->prep_cert.ts().succ(req->client)) {
    dropped("drop_bad_ts");
    return;
  }
  if (options_.strong) {
    // §7.2: the proposed timestamp must succeed a *completed* write,
    // proven by a write certificate for the predecessor timestamp.
    if (!req->write_cert.has_value() ||
        req->write_cert->ts() != req->prep_cert.ts()) {
      dropped("drop_strong_no_wcert");
      return;
    }
  }

  // Step 2: absorb the client's write certificate (GC of prepare lists).
  if (req->write_cert.has_value()) {
    absorb_and_gc(state, req->write_cert->ts());
  }

  // Steps 3–4: Plist admission.
  if (!state.try_prepare(req->client, req->t, req->hash)) {
    dropped("drop_plist_conflict");
    return;
  }
  record_list_sizes(state);

  // Step 5: reply with the signed PREPARE-REPLY statement.
  PrepareReply rep;
  rep.object = req->object;
  rep.t = req->t;
  rep.hash = req->hash;
  rep.replica = id_;
  rep.sig = sign_statement_foreground(
      quorum::prepare_reply_statement(req->object, req->t, req->hash), cost);

  if (options_.background_write_sigs) {
    // §3.3.2: precompute the phase-3 response signature now, off the
    // critical path, so the WRITE reply is immediate.
    const auto key = std::make_pair(
        req->object, std::make_pair(req->t.val, req->t.id));
    if (write_sig_cache_.find(key) == write_sig_cache_.end()) {
      auto sig = signer_.sign(
          quorum::write_reply_statement(req->object, req->t));
      if (sig.is_ok()) {
        write_sig_cache_[key] = std::move(sig).take();
        metrics_.inc("sig_background");
      }
    }
  }

  granted("reply_prepare");
  reply(from, rpc::MsgType::kPrepareReply, env.rpc_id, rep.encode(), cost);
}

// ------------------------------------------------------------ phase 3

void Replica::handle_write(sim::NodeId from, const rpc::Envelope& env) {
  auto req = WriteRequest::decode(env.body);
  if (!req.has_value()) {
    dropped("drop_malformed");
    return;
  }
  ObjectState& state = object(req->object);
  sim::Time cost = 0;

  // Figure 2 phase 3 step 1.
  if (!verify_client_sig(req->client, req->signing_payload(), req->sig,
                         cost)) {
    dropped("drop_bad_auth");
    return;
  }
  if (!valid_prepare_cert(req->prep_cert, req->object, cost)) {
    dropped("drop_bad_cert");
    return;
  }
  if (req->prep_cert.hash() != crypto::sha256(req->value)) {
    dropped("drop_hash_mismatch");
    return;
  }

  // Step 2 (+ §6.2 tiebreak in optimized mode). An equal-timestamp
  // overwrite means the larger-hash tiebreak actually decided — only a
  // Byzantine client can produce two certified values at one timestamp,
  // so the counter doubles as a coverage signal for the explorer.
  const bool tiebreak = options_.optimized &&
                        req->prep_cert.ts() == state.pcert().ts() &&
                        !state.pcert().is_genesis();
  const bool overwrote =
      state.apply_write(req->value, req->prep_cert, options_.optimized);
  if (overwrote) metrics_.inc("state_overwritten");
  if (overwrote && tiebreak) metrics_.inc("opt_tiebreak_overwrite");

  // Step 3.
  WriteReply rep;
  rep.object = req->object;
  rep.ts = req->prep_cert.ts();
  rep.replica = id_;
  rep.sig = options_.background_write_sigs
                ? write_sig_for(req->object, rep.ts, cost)
                : sign_statement_foreground(
                      quorum::write_reply_statement(req->object, rep.ts),
                      cost);

  granted("reply_write");
  reply(from, rpc::MsgType::kWriteReply, env.rpc_id, rep.encode(), cost);
}

// ------------------------------------------------------------ read

void Replica::handle_read(sim::NodeId from, const rpc::Envelope& env) {
  auto req = ReadRequest::decode(env.body);
  if (!req.has_value()) {
    dropped("drop_malformed");
    return;
  }
  ObjectState& state = object(req->object);
  sim::Time cost = 0;

  // §3.3.1 speed-up: a write certificate piggybacked on a read GCs the
  // prepare lists just like one arriving in phase 2. Invalid certs are
  // ignored (the read itself is still served — reads are answered
  // unconditionally).
  if (req->write_cert.has_value() &&
      valid_write_cert(*req->write_cert, req->object, cost)) {
    absorb_and_gc(state, req->write_cert->ts());
    metrics_.inc("gc_via_read");
  }

  ReadReply rep;
  rep.object = req->object;
  rep.value = state.data();
  rep.pcert = state.pcert();
  rep.nonce = req->nonce;
  rep.replica = id_;
  if (amortized_auth_for(from)) {
    metrics_.inc("auth_p2p_amortized");
  } else {
    rep.auth = p2p_auth(env.sender, rep.signing_payload(), cost);
  }

  granted("reply_read");
  reply(from, rpc::MsgType::kReadReply, env.rpc_id, rep.encode(), cost);
}

// ----------------------------------- crash recovery (state transfer)

void Replica::handle_state_xfer(sim::NodeId from, const rpc::Envelope& env) {
  auto req = StateXferRequest::decode(env.body);
  if (!req.has_value()) {
    dropped("drop_malformed");
    return;
  }
  ObjectState& state = object(req->object);

  StateXferReply rep;
  rep.object = req->object;
  rep.nonce = req->nonce;
  Writer w;
  state.encode(w);
  rep.state = std::move(w).take();
  rep.replica = id_;

  // No crypto cost: the snapshot is validated by the requester (the
  // certificate inside is the proof), not vouched for by this carrier.
  granted("reply_state_xfer");
  reply(from, rpc::MsgType::kStateXferReply, env.rpc_id, rep.encode(), 0);
}

void Replica::route_recovery_reply(sim::NodeId from, const rpc::Envelope& env) {
  // No QuorumCall frame is active on entry, so parked calls can die now
  // (same lifetime pattern as Client::retired_calls_).
  retired_recovery_calls_.clear();
  for (auto& [rpc_id, rc] : recovery_calls_) {
    if (rc.call && rc.call->on_reply(from, env)) return;
  }
  metrics_.inc("state_xfer_reply_stray");
}

void Replica::begin_recovery(const std::vector<ObjectId>& objects,
                             std::vector<sim::NodeId> peer_nodes,
                             RecoveryDone on_done) {
  recovery_done_ = std::move(on_done);
  if (objects.empty()) {
    if (recovery_done_) {
      RecoveryDone done = std::move(recovery_done_);
      recovery_done_ = nullptr;
      done();
    }
    return;
  }
  for (ObjectId obj : objects) {
    const std::uint64_t rpc_id = next_recovery_rpc_++;
    RecoveryCall& rc = recovery_calls_[rpc_id];
    rc.object = obj;
    rc.nonce =
        crypto::Nonce{quorum::replica_principal(id_), rpc_id, /*random=*/0};

    StateXferRequest req;
    req.object = obj;
    req.nonce = rc.nonce;
    rpc::Envelope env;
    env.type = rpc::MsgType::kStateXfer;
    env.rpc_id = rpc_id;
    env.sender = quorum::replica_principal(id_);
    env.body = req.encode();

    auto validator = [this, rpc_id](std::uint32_t idx,
                                    const rpc::Envelope& rep_env) {
      auto it = recovery_calls_.find(rpc_id);
      if (it == recovery_calls_.end()) return false;
      RecoveryCall& call = it->second;
      auto rep = StateXferReply::decode(rep_env.body);
      if (!rep.has_value() || rep->object != call.object ||
          rep->nonce != call.nonce) {
        metrics_.inc("state_xfer_reply_invalid");
        return false;
      }
      Reader r(rep->state);
      std::optional<ObjectState> snap = ObjectState::decode(r);
      if (!snap.has_value() || !r.done() || snap->object() != call.object ||
          snap->pcert().object() != call.object) {
        metrics_.inc("state_xfer_reply_invalid");
        return false;
      }
      // The snapshot's certificate is the proof of its value: a genesis
      // cert must carry the empty value, anything else must validate
      // and cover the value's hash. List entries need no proof here —
      // ObjectState::recover only lets them make this replica refuse
      // conservatively.
      if (snap->pcert().is_genesis()) {
        if (!snap->data().empty()) {
          metrics_.inc("state_xfer_reply_invalid");
          return false;
        }
      } else {
        if (!snap->pcert().validate(config_, keystore_).is_ok() ||
            crypto::compare_digests(crypto::sha256(snap->data()),
                                    snap->pcert().hash()) != 0) {
          metrics_.inc("state_xfer_reply_invalid");
          return false;
        }
      }
      call.snapshots.emplace(idx, std::move(*snap));
      return true;
    };

    auto on_complete = [this, rpc_id]() {
      auto it = recovery_calls_.find(rpc_id);
      if (it == recovery_calls_.end()) return;
      RecoveryCall& call = it->second;
      std::vector<ObjectState> snaps;
      snaps.reserve(call.snapshots.size());
      for (auto& [idx, s] : call.snapshots) snaps.push_back(std::move(s));
      const ObjectId obj = call.object;
      ObjectState rebuilt = ObjectState::recover(obj, snaps, config_.f);
      objects_.insert_or_assign(obj, std::move(rebuilt));
      cold_store_.erase(obj);
      touch_lru(obj);
      enforce_resident_cap(obj);
      metrics_.inc("state_recovered_objects");
      // Park the finished call: we are inside its on_reply frame.
      retired_recovery_calls_.push_back(std::move(call.call));
      recovery_calls_.erase(it);
      if (recovery_calls_.empty() && recovery_done_) {
        RecoveryDone done = std::move(recovery_done_);
        recovery_done_ = nullptr;
        done();
      }
    };

    metrics_.inc("state_xfer_sent");
    rc.call = std::make_unique<rpc::QuorumCall>(
        sim_, transport_, peer_nodes, config_.q, std::move(env),
        std::move(validator), std::move(on_complete));
  }
}

// ------------------------------------------------ optimized phase 1 (§6.2)

void Replica::handle_read_ts_prep(sim::NodeId from, const rpc::Envelope& env) {
  auto req = ReadTsPrepRequest::decode(env.body);
  if (!req.has_value()) {
    dropped("drop_malformed");
    return;
  }
  ObjectState& state = object(req->object);
  sim::Time cost = 0;

  if (!is_authorized(req->client)) {
    dropped("drop_unauthorized");
    return;
  }
  if (!verify_client_sig(req->client, req->signing_payload(), req->sig,
                         cost)) {
    dropped("drop_bad_auth");
    return;
  }
  if (req->write_cert.has_value()) {
    if (!valid_write_cert(*req->write_cert, req->object, cost)) {
      dropped("drop_bad_cert");
      return;
    }
    absorb_and_gc(state, req->write_cert->ts());
  }

  ReadTsPrepReply rep;
  rep.object = req->object;
  rep.nonce = req->nonce;
  rep.pcert = state.pcert();
  rep.replica = id_;

  // In strong mode the optimistic prediction is only sound when anchored
  // to a committed write: the client's certificate must cover this
  // replica's current timestamp (otherwise fall back to phase 2, where
  // the §7.2 checks apply).
  const bool strong_ok =
      !options_.strong || (req->write_cert.has_value() &&
                           req->write_cert->ts() == state.pcert().ts());

  std::optional<Timestamp> predicted;
  if (strong_ok) predicted = state.try_opt_prepare(req->client, req->hash);
  record_list_sizes(state);

  if (predicted.has_value()) {
    rep.prepared = true;
    rep.predicted_t = *predicted;
    rep.hash = req->hash;
    rep.prepare_sig = sign_statement_foreground(
        quorum::prepare_reply_statement(req->object, *predicted, req->hash),
        cost);
    if (options_.background_write_sigs) {
      const auto key = std::make_pair(
          req->object, std::make_pair(predicted->val, predicted->id));
      if (write_sig_cache_.find(key) == write_sig_cache_.end()) {
        auto sig = signer_.sign(
            quorum::write_reply_statement(req->object, *predicted));
        if (sig.is_ok()) {
          write_sig_cache_[key] = std::move(sig).take();
          metrics_.inc("sig_background");
        }
      }
    }
    granted("reply_read_ts_prep_prepared");
  } else {
    granted("reply_read_ts_prep_fallback");
  }

  if (options_.strong) {
    rep.strong_write_sig = sign_statement_foreground(
        quorum::write_reply_statement(req->object, state.pcert().ts()), cost);
  }
  if (amortized_auth_for(from)) {
    metrics_.inc("auth_p2p_amortized");
  } else {
    rep.auth = p2p_auth(env.sender, rep.signing_payload(), cost);
  }
  reply(from, rpc::MsgType::kReadTsPrepReply, env.rpc_id, rep.encode(), cost);
}

}  // namespace bftbc::core
