// KvStore: a string-keyed convenience facade over BFT-BC objects.
//
// Each key maps to an object id by hashing (the register space is 2^64;
// collisions are negligible and would only merge two keys' histories,
// never break safety). Deletion is modeled as writing the empty value —
// reads translate an empty register back to "absent". All the protocol
// guarantees carry over per key: atomicity, Byzantine-client confinement,
// bounded lurking writes.
#pragma once

#include <string>

#include "bftbc/client.h"

namespace bftbc::core {

class KvStore {
 public:
  explicit KvStore(Client& client) : client_(client) {}

  // Deterministic key → object mapping (first 8 bytes of SHA-256).
  static ObjectId object_for_key(std::string_view key);

  struct PutResult {
    Timestamp version;
    int phases = 0;
  };
  using PutCallback = std::function<void(Result<PutResult>)>;
  void put(std::string_view key, Bytes value, PutCallback cb);

  struct GetResult {
    // Absent keys (never written, or erased) yield no value.
    std::optional<Bytes> value;
    Timestamp version;
    int phases = 0;
  };
  using GetCallback = std::function<void(Result<GetResult>)>;
  void get(std::string_view key, GetCallback cb);

  // Erase = write the empty value (tombstone); the version still
  // advances, so erases linearize like any other write.
  void erase(std::string_view key, PutCallback cb);

  Client& client() { return client_; }

 private:
  Client& client_;
};

}  // namespace bftbc::core
