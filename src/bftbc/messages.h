// BFT-BC wire message bodies (paper §3.2, Figures 1–2, and §6.2).
//
// Each struct mirrors one message of the protocol. Structs carry their
// own encode/decode plus, where the paper requires authentication, a
// `signing_payload()` that returns the exact bytes the sender signs.
// Signing payloads are domain-separated by an AuthTag so a signature can
// never be replayed across message kinds.
//
// Authentication inventory (§3.3.2):
//  - PREPARE-REPLY and WRITE-REPLY carry *public-key* signatures over
//    statement bytes (quorum/statements.h) — they are certificate
//    components shown to third parties.
//  - READ-TS-REPLY / READ-REPLY / READ-TS-PREP-REPLY authentication is
//    point-to-point (only the requesting client checks it), so a MAC
//    would do; we still route it through the Keystore but replicas count
//    it separately ("auth_p2p") for the cost experiments.
//  - PREPARE / WRITE / READ-TS-PREP are signed by the client.
#pragma once

#include <optional>
#include <vector>

#include "crypto/nonce.h"
#include "crypto/sha256.h"
#include "quorum/certificate.h"
#include "rpc/message.h"

namespace bftbc::core {

using quorum::ObjectId;
using quorum::PrepareCertificate;
using quorum::ReplicaId;
using quorum::Timestamp;
using quorum::WriteCertificate;

// Domain tags for signing payloads that are not certificate statements.
enum class AuthTag : std::uint8_t {
  kReadTsReply = 0x10,
  kPrepare = 0x11,
  kWrite = 0x12,
  kReadReply = 0x13,
  kReadTsPrep = 0x14,
  kReadTsPrepReply = 0x15,
  kReplyBatch = 0x16,
};

// ---------------------------------------------------------------------
// Write phase 1: 〈READ-TS, nonce〉  (unauthenticated request)

struct ReadTsRequest {
  ObjectId object = 0;
  crypto::Nonce nonce;

  Bytes encode() const;
  static std::optional<ReadTsRequest> decode(BytesView b);
};

// 〈READ-TS-REPLY, Pcert, nonce〉σr. In strong mode (§7) the reply also
// carries the replica's signature over the WRITE-REPLY statement for
// Pcert.ts, letting a client whose phase-1 replies all agree assemble a
// write certificate without extra communication.
struct ReadTsReply {
  ObjectId object = 0;
  crypto::Nonce nonce;
  PrepareCertificate pcert;
  Bytes strong_write_sig;  // empty unless strong mode
  ReplicaId replica = 0;
  Bytes auth;  // point-to-point authenticator by the replica

  Bytes signing_payload() const;
  Bytes encode() const;
  static std::optional<ReadTsReply> decode(BytesView b);
};

// ---------------------------------------------------------------------
// Write phase 2: 〈PREPARE, Pmax, t, h(val), Wcert〉σc

struct PrepareRequest {
  ObjectId object = 0;
  Timestamp t;
  crypto::Digest hash{};
  PrepareCertificate prep_cert;              // Pmax justifying t
  std::optional<WriteCertificate> write_cert;  // client's last write (or null)
  quorum::ClientId client = 0;
  Bytes sig;

  Bytes signing_payload() const;
  Bytes encode() const;
  static std::optional<PrepareRequest> decode(BytesView b);
};

// 〈PREPARE-REPLY, t, h〉σr — a certificate component; sig covers the
// statement bytes from quorum/statements.h.
struct PrepareReply {
  ObjectId object = 0;
  Timestamp t;
  crypto::Digest hash{};
  ReplicaId replica = 0;
  Bytes sig;

  Bytes encode() const;
  static std::optional<PrepareReply> decode(BytesView b);
};

// ---------------------------------------------------------------------
// Write phase 3: 〈WRITE, val, Pnew〉σc

struct WriteRequest {
  ObjectId object = 0;
  Bytes value;
  PrepareCertificate prep_cert;  // Pnew
  quorum::ClientId client = 0;   // the signer (reader during write-back)
  Bytes sig;

  Bytes signing_payload() const;
  Bytes encode() const;
  static std::optional<WriteRequest> decode(BytesView b);
};

// 〈WRITE-REPLY, t〉σr — certificate component.
struct WriteReply {
  ObjectId object = 0;
  Timestamp ts;
  ReplicaId replica = 0;
  Bytes sig;

  Bytes encode() const;
  static std::optional<WriteReply> decode(BytesView b);
};

// ---------------------------------------------------------------------
// Read: 〈READ, nonce〉
//
// Optionally carries the reader's last write certificate — the §3.3.1
// speed-up ("we could speed up removing entries from the list if we
// propagated write certificates in more messages, e.g., in read
// requests"); replicas absorb it for prepare-list GC exactly as in
// phase 2. Enabled by ClientOptions::gc_in_reads (ablated in bench E5).

struct ReadRequest {
  ObjectId object = 0;
  crypto::Nonce nonce;
  std::optional<WriteCertificate> write_cert;

  Bytes encode() const;
  static std::optional<ReadRequest> decode(BytesView b);
};

// Reply with value, prepare certificate, and nonce, authenticated by the
// replica (point-to-point).
struct ReadReply {
  ObjectId object = 0;
  Bytes value;
  PrepareCertificate pcert;
  crypto::Nonce nonce;
  ReplicaId replica = 0;
  Bytes auth;

  Bytes signing_payload() const;
  Bytes encode() const;
  static std::optional<ReadReply> decode(BytesView b);
};

// ---------------------------------------------------------------------
// Optimized write phase 1 (§6.2): 〈READ-TS-PREP, h, Wcert〉σc

struct ReadTsPrepRequest {
  ObjectId object = 0;
  crypto::Digest hash{};
  std::optional<WriteCertificate> write_cert;
  crypto::Nonce nonce;
  quorum::ClientId client = 0;
  Bytes sig;

  Bytes signing_payload() const;
  Bytes encode() const;
  static std::optional<ReadTsPrepRequest> decode(BytesView b);
};

// Reply: always the replica's current Pcert (the normal phase-1 answer);
// when the optimistic prepare succeeded, additionally the predicted
// timestamp and the PREPARE-REPLY statement signature for (t', h) —
// exactly the component a prepare certificate needs. Strong mode also
// piggybacks the write-statement signature as in ReadTsReply.
struct ReadTsPrepReply {
  ObjectId object = 0;
  crypto::Nonce nonce;
  PrepareCertificate pcert;
  bool prepared = false;
  Timestamp predicted_t;
  crypto::Digest hash{};
  Bytes prepare_sig;       // statement sig when prepared
  Bytes strong_write_sig;  // strong mode only
  ReplicaId replica = 0;
  Bytes auth;

  Bytes signing_payload() const;
  Bytes encode() const;
  static std::optional<ReadTsPrepReply> decode(BytesView b);
};

// ---------------------------------------------------------------------
// Reply batch: 〈REPLY-BATCH, replies…〉σr
//
// When a replica's same-tick batch holds several point-to-point
// authenticated requests from one client (READ-TS / READ /
// READ-TS-PREP), it amortizes reply signing: the per-reply `auth`
// fields stay empty and the bundled replies ship under a single
// authenticator covering every reply — including each echoed nonce, so
// freshness is exactly what the per-reply MACs gave. Certificate-
// component signatures (PREPARE-REPLY / WRITE-REPLY statements) are
// shown to third parties and are never amortized this way.

struct ReplyBatch {
  ReplicaId replica = 0;
  std::vector<Bytes> replies;  // encoded rpc::Envelopes
  Bytes auth;                  // point-to-point authenticator by the replica

  Bytes signing_payload() const;
  Bytes encode() const;
  static std::optional<ReplyBatch> decode(BytesView b);
};

// ---------------------------------------------------------------------
// Crash recovery: 〈STATE-XFER, object, nonce〉 (unauthenticated request)
//
// A restarting replica rebuilds each object's state from its peers.
// Like READ, the request needs no signature: replies are self-verifying
// — the interesting content is a prepare certificate the recovering
// replica validates itself, and prepare-list entries are only adopted
// when they appear in a quorum's worth of replies (Lemma 1: any
// certified prepare is held by at least f+1 correct replicas, so it
// shows up in any 2f+1 replies).

struct StateXferRequest {
  ObjectId object = 0;
  crypto::Nonce nonce;

  Bytes encode() const;
  static std::optional<StateXferRequest> decode(BytesView b);
};

// Reply carrying the replica's full serialized ObjectState (value,
// Pcert, both prepare lists, last write ts) as an opaque blob the
// recovering replica decodes and cross-validates against the quorum.
struct StateXferReply {
  ObjectId object = 0;
  crypto::Nonce nonce;
  Bytes state;  // ObjectState::encode blob
  ReplicaId replica = 0;

  Bytes encode() const;
  static std::optional<StateXferReply> decode(BytesView b);
};

// ---------------------------------------------------------------------
// Helpers shared by encode/decode implementations.

void encode_optional_wcert(Writer& w, const std::optional<WriteCertificate>& c);
std::optional<WriteCertificate> decode_optional_wcert(Reader& r);

}  // namespace bftbc::core
