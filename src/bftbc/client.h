// BFT-BC client (paper Figure 1, §3.2.2 reads, §6.2 optimized writes,
// §7.2 strong writes).
//
// Operations are asynchronous: write() / read() return immediately and
// the callback fires when the operation completes (or its deadline
// expires). The client keeps, per object, the write certificate of its
// last completed write — the proof replicas demand before admitting its
// next prepare.
//
// Phase accounting: every quorum RPC round counts as one phase, so
//   base write  = 3,      optimized write = 2 (contended: 3)
//   read        = 1 or 2 (write-back)
//   strong write = base/optimized + 2 when phase-1 timestamps disagree
// The per-op result reports the count; benches E1–E3 aggregate them.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bftbc/messages.h"
#include "metrics/registry.h"
#include "metrics/trace.h"
#include "rpc/quorum_call.h"
#include "rpc/transport.h"
#include "sim/simulator.h"
#include "util/rng.h"
#include "util/stats.h"

namespace bftbc::core {

struct OpBase;

struct ClientOptions {
  bool optimized = false;  // §6: merge phases 1+2 via READ-TS-PREP
  bool strong = false;     // §7: prepares carry predecessor write certs
  // §3.3.1 speed-up: piggyback this client's last write certificate on
  // READ requests so replicas garbage-collect prepare lists sooner.
  bool gc_in_reads = false;
  // MAC-authenticator mode (§3.3.2): requests carry an n-tag MAC
  // authenticator instead of a signature, and replica reply auth is a
  // pair MAC. Must match the replicas' ReplicaOptions::mac_auth.
  bool mac_auth = false;
  rpc::QuorumCallOptions rpc;
  sim::Time op_deadline = 0;  // 0 = rely on protocol liveness (no timeout)
  // Pipelined writes (submit_write): bound on concurrently in-flight
  // write operations; 0 = unlimited. Independent objects' phases overlap
  // up to this window; writes to an object that already has an op in
  // flight queue FIFO behind it, so per-object ordering — the property
  // the certificate chain and BFT-linearizability rest on — always
  // holds regardless of the window size.
  std::uint32_t max_inflight = 0;
  // Optional observability hooks. When `registry` is set the client
  // records per-phase and whole-op latencies (milliseconds of virtual
  // time) into shared summaries: "client.write.{total,read_ts,prepare,
  // write}_ms" and "client.read.{total,read,writeback}_ms". All clients
  // bound to one registry aggregate into the same summaries. When
  // `tracer` is set, op begin/end and phase transitions are recorded.
  metrics::MetricsRegistry* registry = nullptr;
  metrics::Tracer* tracer = nullptr;
  // Prepended verbatim to every summary/histogram name this client
  // resolves ("shard/2/" → "shard/2/client.write.total_ms"). Clients of
  // one role share a prefix to aggregate; distinct roles sharing a
  // registry (per-shard inner clients under a routing client) use
  // distinct prefixes so their latency streams never silently alias.
  std::string metrics_prefix;
};

class Client {
 public:
  // `scheduler` is the node's timer source: the discrete-event Simulator
  // in tests/benches, a net::EventLoop in a live deployment — the state
  // machine is identical either way.
  Client(const quorum::QuorumConfig& config, quorum::ClientId id,
         crypto::Keystore& keystore, rpc::Transport& transport,
         sim::Scheduler& scheduler, std::vector<sim::NodeId> replica_nodes,
         Rng rng, ClientOptions options = ClientOptions());
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  quorum::ClientId id() const { return id_; }
  const ClientOptions& options() const { return options_; }

  struct WriteResult {
    Timestamp ts;   // the timestamp this write committed at
    int phases = 0; // quorum RPC rounds the operation took
  };
  using WriteCallback = std::function<void(Result<WriteResult>)>;

  struct ReadResult {
    Bytes value;
    Timestamp ts;
    crypto::Digest hash{};
    int phases = 0;
  };
  using ReadCallback = std::function<void(Result<ReadResult>)>;

  // Start a write. At most one operation per object may be outstanding
  // for this client (the protocol chains writes through certificates).
  void write(ObjectId object, Bytes value, WriteCallback cb);

  // Start a read (§3.2.2): one phase, plus a write-back phase when the
  // quorum's answers disagree.
  void read(ObjectId object, ReadCallback cb);

  // Pipelined write: like write(), but bounded by options.max_inflight
  // and safe to call with an operation already outstanding — writes to a
  // busy object (or past the window) queue FIFO and dispatch as slots
  // free up. Counters: "pipelined_writes", "queued_writes",
  // "inflight_peak"; with a registry, the "client.inflight" histogram
  // samples window occupancy at every dispatch.
  void submit_write(ObjectId object, Bytes value, WriteCallback cb);

  // Writes waiting for a pipeline slot (tests/benches drain on this).
  std::size_t queued_writes() const { return write_queue_.size(); }
  std::uint32_t inflight_writes() const { return inflight_writes_; }

  bool has_pending_op(ObjectId object) const;

  // The write certificate retained from the last completed write on this
  // object (exposed for tests and for the colluder in src/faults).
  const std::optional<WriteCertificate>& last_write_cert(ObjectId object) const;

  // Cumulative counters: "writes", "reads", "write_phases", "read_phases",
  // "internal_reads" (strong-mode fallbacks), "opt_fast_writes".
  const Counters& metrics() const { return metrics_; }

 private:
  struct WriteOp;
  struct ReadOp;

  // --- write path -----------------------------------------------------
  void start_write_phase1(WriteOp& op);
  void start_write_phase1_opt(WriteOp& op);
  void finish_write_phase1(WriteOp& op);
  void finish_write_phase1_opt(WriteOp& op);
  // Ensures op.pmax / (strong) op.wcert_for_pmax are coherent, running an
  // internal read + write-back when the phase-1 answers disagreed.
  void ensure_strong_wcert_then_phase2(WriteOp& op);
  void start_write_phase2(WriteOp& op);
  void start_write_phase3(WriteOp& op);
  void finish_write(WriteOp& op);

  // --- read path ------------------------------------------------------
  struct InternalReadDone {
    Bytes value;
    PrepareCertificate pcert;
    WriteCertificate wcert;  // from the forced write-back
    int phases = 0;
  };
  void start_read(ReadOp& op);
  void start_read_writeback(ReadOp& op);
  void finish_read(ReadOp& op);

  // --- plumbing ---------------------------------------------------------
  void on_envelope(sim::NodeId from, const rpc::Envelope& env);
  // Routes one reply envelope into whichever op's QuorumCall claims it.
  void dispatch_reply(sim::NodeId from, const rpc::Envelope& env);
  // Verifies a ReplyBatch's single authenticator, then dispatches the
  // bundled sub-replies with `batch_authed_` open (reply-signing
  // amortization: sub-replies carry no per-reply auth of their own).
  void handle_reply_batch(sim::NodeId from, const rpc::Envelope& env);
  // `phase_lat` (may be null) receives this round's latency when the
  // quorum call completes; `phase_name` labels the kPhase trace event.
  void begin_call(OpBase& op, rpc::Envelope request,
                  rpc::QuorumCall::Validator validator,
                  std::function<void()> on_complete,
                  Summary* phase_lat = nullptr,
                  const char* phase_name = nullptr);
  void fail_op(std::uint64_t op_id, Status status);
  rpc::Envelope make_request(rpc::MsgType type, Bytes body);
  OpBase* find_op(std::uint64_t id);

  // Request authentication: a signature, or (mac_auth) the n-replica MAC
  // authenticator.
  [[nodiscard]] Result<Bytes> sign_request(BytesView payload) const;
  // Reply authentication from replica `idx`: signature verify, or
  // (mac_auth) the pair-MAC check toward this client.
  [[nodiscard]] bool check_reply_auth(std::uint32_t idx, BytesView payload,
                                      BytesView auth) const;

  // Dispatches queued pipelined writes into free window slots (FIFO,
  // skipping objects that still have an op in flight).
  void pump_pipeline();

  quorum::QuorumConfig config_;
  quorum::ClientId id_;
  crypto::Keystore& keystore_;
  crypto::Signer signer_;
  rpc::Transport& transport_;
  sim::Scheduler& sim_;
  std::vector<sim::NodeId> replica_nodes_;
  // Replica principals in replica_nodes_ order (authenticator slots).
  std::vector<crypto::PrincipalId> replica_principals_;
  crypto::NonceGenerator nonces_;
  ClientOptions options_;

  std::map<std::uint64_t, std::unique_ptr<OpBase>> ops_;
  // QuorumCalls being replaced mid-delivery park here until it is safe
  // to destroy them (start of the next envelope / next op start).
  std::vector<std::unique_ptr<rpc::QuorumCall>> retired_calls_;

  std::map<ObjectId, std::optional<WriteCertificate>> last_write_cert_;
  std::uint64_t next_op_id_ = 1;
  std::uint64_t next_rpc_id_ = 1;
  Counters metrics_;

  // Pipelined-write state (submit_write).
  struct PendingWrite {
    ObjectId object = 0;
    Bytes value;
    WriteCallback cb;
    bool counted_queued = false;  // "queued_writes" counts each once
  };
  std::deque<PendingWrite> write_queue_;
  std::uint32_t inflight_writes_ = 0;
  std::uint64_t inflight_peak_ = 0;
  bool pumping_ = false;
  bool repump_ = false;

  // True only while dispatching sub-replies of a ReplyBatch whose batch
  // authenticator verified; validators then accept an empty per-reply
  // auth (it is covered by the batch MAC, nonces included).
  bool batch_authed_ = false;

  // Pre-resolved latency summaries (all null without options.registry).
  struct LatencyHandles {
    Summary* write_total = nullptr;
    Summary* write_read_ts = nullptr;
    Summary* write_prepare = nullptr;
    Summary* write_write = nullptr;
    Summary* read_total = nullptr;
    Summary* read_read = nullptr;
    Summary* read_writeback = nullptr;
  };
  LatencyHandles lat_;
  Histogram* inflight_hist_ = nullptr;
  metrics::Tracer* tracer_ = nullptr;
};

// Shared base for in-flight operations (header-visible so unique_ptr in
// the map works with the nested types defined in the .cpp).
struct OpBase {
  virtual ~OpBase() = default;
  // Deliver a failure to whoever is waiting on this operation.
  virtual void fail(const Status& status) = 0;

  std::uint64_t op_id = 0;
  ObjectId object = 0;
  int phases = 0;
  sim::Time started = 0;  // virtual start time (latency accounting)
  std::unique_ptr<rpc::QuorumCall> call;
  sim::TimerId deadline_timer = 0;
};

}  // namespace bftbc::core
