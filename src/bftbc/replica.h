// BFT-BC replica (paper Figure 2 + §6.2 replica side + §7.2 checks).
//
// One Replica instance serves all protocol variants; ReplicaOptions picks
// the mode:
//   - base       : three-phase writes, Plist only
//   - optimized  : also answers READ-TS-PREP, maintains optlist, applies
//                  the larger-hash tiebreak on equal timestamps
//   - strong     : phase-1 replies carry a signed WRITE-REPLY statement
//                  for the current timestamp, and PREPARE is accepted
//                  only with a write certificate proving the proposed
//                  timestamp succeeds a *completed* write
//
// Faithful to Figure 2, invalid requests are discarded *without* a reply
// (a reply would let a bad client distinguish probe outcomes); drops are
// visible to tests through the metrics counters.
//
// Crypto cost model: `sign_cost`/`verify_cost` charge virtual time per
// public-key operation, delaying the reply. With `background_write_sigs`
// (§3.3.2) the WRITE-REPLY signature for a just-prepared timestamp is
// precomputed when the PREPARE is answered, so the phase-3 reply pays no
// foreground signing cost — the ablation bench E8 flips this flag.
#pragma once

#include <functional>
#include <list>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "bftbc/messages.h"
#include "bftbc/replica_state.h"
#include "metrics/registry.h"
#include "rpc/quorum_call.h"
#include "rpc/transport.h"
#include "sim/simulator.h"
#include "util/stats.h"

namespace bftbc::core {

struct ReplicaOptions {
  bool optimized = false;
  bool strong = false;
  bool background_write_sigs = true;
  sim::Time sign_cost = 0;    // virtual time per public-key signature
  sim::Time verify_cost = 0;  // virtual time per signature verification
  // When true, write-path requests (PREPARE / WRITE / READ-TS-PREP) are
  // accepted only from clients on the explicit access control list
  // ("replicas allow write requests only from authorized clients",
  // §3.1); when false, any client with a valid signature may write.
  // Reads are answered unconditionally either way.
  bool enforce_acl = false;
  // Same-tick batch verification: all messages delivered to the replica
  // at one virtual-time instant are drained into a single batch whose
  // signature checks run through one sorted, cache-aware
  // Keystore::verify_batch pass before the messages dispatch. Semantics
  // are identical to per-message processing (handlers still re-check via
  // the warmed verify cache); only the crypto schedule changes, and it
  // stays deterministic because the flush is keyed to sim time.
  bool batch_verify = true;
  // MAC-authenticator mode (paper §3.3.2): point-to-point messages —
  // client requests and replica replies — are authenticated with pair
  // MACs instead of signatures. Client request `sig` fields then carry
  // an n-tag authenticator (this replica checks slice id); replies
  // carry a single MAC toward the requesting principal. Signatures
  // remain for prepare/write certificate statements, which must be
  // transferable proofs. Clients and replicas must agree on this knob.
  bool mac_auth = false;
  // Optional observability hook. When set, the replica keeps scoped
  // grant/reject totals ("replica/<id>/grants", "replica/<id>/rejects")
  // plus shared list-size histograms ("replica.plist_size",
  // "replica.optlist_size") in addition to the per-name Counters.
  metrics::MetricsRegistry* registry = nullptr;
  // Registry scope for this replica's counters; empty derives the
  // classic "replica/<id>". A sharded harness passes
  // "shard/<s>/replica/<r>" so same-numbered replicas of different
  // groups do not alias (no trailing slash).
  std::string metrics_scope;
  // Memory discipline for large keyspaces: when nonzero, at most this
  // many ObjectState instances stay resident. Cold objects are evicted
  // LRU — serialized to the replica's object store — and transparently
  // reloaded on next touch. Counters: "objects_evicted",
  // "objects_reloaded"; GC of superseded prepare/optlist entries is
  // tallied under "gc_reclaimed" either way.
  std::size_t max_resident_objects = 0;
  // Serial-server processing model: reply costs queue behind one
  // another (a single CPU per replica) instead of overlapping freely.
  // This is what makes aggregate virtual-time throughput saturate per
  // group — and scale with shard count — in bench_sharding. Off by
  // default: the classic model charges each reply its own cost only.
  bool serialize_processing = false;
};

class Replica {
 public:
  // `scheduler` is the node's timer source: the discrete-event Simulator
  // in tests/benches, a net::EventLoop in a live deployment — the state
  // machine is identical either way.
  Replica(const quorum::QuorumConfig& config, ReplicaId id,
          crypto::Keystore& keystore, rpc::Transport& transport,
          sim::Scheduler& scheduler, ReplicaOptions options = ReplicaOptions());

  virtual ~Replica();
  Replica(const Replica&) = delete;
  Replica& operator=(const Replica&) = delete;

  ReplicaId id() const { return id_; }
  const quorum::QuorumConfig& config() const { return config_; }
  const ReplicaOptions& options() const { return options_; }

  // Per-object state, created on first touch (tests & checkers read it).
  // With max_resident_objects set this is also the reload point: a
  // previously evicted object is decoded back from the store, and the
  // insertion may evict the coldest resident object to stay under the
  // cap.
  ObjectState& object(ObjectId id);
  // Resident lookup only — never reloads (const; tests and checkers use
  // it to observe residency).
  const ObjectState* find_object(ObjectId id) const;

  // Memory-discipline observability (all zero when eviction is off).
  std::size_t resident_objects() const { return objects_.size(); }
  std::size_t evicted_objects() const { return cold_store_.size(); }

  // Crash recovery: rebuild the named objects' state from a quorum of
  // peer replicas via STATE-XFER. One QuorumCall per object runs
  // concurrently (20ms retransmits, no deadline — recovery is live as
  // soon as 2f+1 peers are reachable, like any client phase). Replies
  // are self-verifying: each snapshot's prepare certificate must
  // validate and cover the value hash before it counts, and the
  // adopted state is the Byzantine-tolerant merge of 2f+1 valid
  // snapshots (ObjectState::recover). `on_done` fires once every
  // object is installed. Counters: "state_xfer_sent",
  // "state_xfer_reply_invalid", "state_recovered_objects".
  using RecoveryDone = std::function<void()>;
  void begin_recovery(const std::vector<ObjectId>& objects,
                      std::vector<sim::NodeId> peer_nodes,
                      RecoveryDone on_done = nullptr);
  bool recovering() const { return !recovery_calls_.empty(); }

  // Counters: replies/drops per message kind, signature accounting
  // ("sig_foreground", "sig_background", "auth_p2p", "verify_*"), drop
  // reasons ("drop_bad_auth", "drop_bad_cert", "drop_bad_ts",
  // "drop_plist_conflict", ...).
  const Counters& metrics() const { return metrics_; }
  void reset_metrics() { metrics_.reset(); }

  // Access control list (only consulted when options.enforce_acl). The
  // administrator action of the paper's stop event: `deauthorize`
  // removes the client's write privilege; already-signed messages keep
  // verifying, so a colluder can still replay completed prepares — the
  // lurking-write bound is what limits the damage.
  void authorize(quorum::ClientId client) { acl_.insert(client); }
  void deauthorize(quorum::ClientId client) { acl_.erase(client); }
  bool is_authorized(quorum::ClientId client) const {
    return !options_.enforce_acl || acl_.count(client) != 0;
  }

 protected:
  // Transport entry point: enqueues into the current tick's batch (or
  // dispatches immediately when batching is off).
  void deliver(sim::NodeId from, const rpc::Envelope& env);

  // Drains the tick's batch: one verify_batch pass over every signature
  // the batch needs, then per-message dispatch through on_envelope (so
  // Byzantine subclass interceptors still see every message).
  void flush_batch();

  // Collects the signature checks `env` will perform into `items`
  // (client signature + certificate signatures, by message type).
  void collect_verify_items(
      const rpc::Envelope& env,
      std::vector<crypto::Keystore::VerifyItem>& items) const;

  // True while the current flush amortizes point-to-point reply
  // authentication toward `to`: at least two auth-bearing requests from
  // that node share this batch, so handlers leave the per-reply `auth`
  // empty and flush_replies() ships one ReplyBatch under a single
  // authenticator instead.
  [[nodiscard]] bool amortized_auth_for(sim::NodeId to) const;

  // Sends the replies captured during batch dispatch: one authenticated
  // ReplyBatch per destination, scheduled at the group's largest
  // per-reply processing cost (replies of one batch are produced by the
  // same verification pass, so they leave together).
  void flush_replies();

  // Virtual so Byzantine replica behaviors (src/faults) can intercept.
  virtual void on_envelope(sim::NodeId from, const rpc::Envelope& env);

  void handle_read_ts(sim::NodeId from, const rpc::Envelope& env);
  void handle_prepare(sim::NodeId from, const rpc::Envelope& env);
  void handle_write(sim::NodeId from, const rpc::Envelope& env);
  void handle_read(sim::NodeId from, const rpc::Envelope& env);
  void handle_read_ts_prep(sim::NodeId from, const rpc::Envelope& env);

  // Recovery peer side: serve this replica's serialized ObjectState.
  // Unauthenticated like READ — the snapshot is validated by the
  // requester, not vouched for by the carrier.
  void handle_state_xfer(sim::NodeId from, const rpc::Envelope& env);
  // Recovery requester side: route a STATE-XFER-REPLY into the matching
  // in-flight recovery call.
  void route_recovery_reply(sim::NodeId from, const rpc::Envelope& env);

  // Sends a reply after the virtual-time cost accumulated while handling
  // the request (signature/verification charges). Virtual so Byzantine
  // replicas can tamper with outgoing bytes.
  virtual void reply(sim::NodeId to, rpc::MsgType type, std::uint64_t rpc_id,
                     Bytes body, sim::Time processing_cost);

  // Converts a processing cost into the reply's actual delay. Classic
  // model: the cost itself (infinite parallelism). serialize_processing:
  // the work queues behind the replica's single CPU (busy_until_), so
  // the delay includes time spent waiting for earlier requests.
  sim::Time charge_processing(sim::Time cost);

  // Sign helpers; all tally metrics and return the accumulated cost.
  Bytes sign_statement_foreground(BytesView stmt, sim::Time& cost);
  // Point-to-point reply authenticator toward principal `to` (the
  // requester's claimed sender principal): a pair MAC in mac_auth mode,
  // a signature otherwise.
  Bytes p2p_auth(crypto::PrincipalId to, BytesView payload, sim::Time& cost);

  // Background-signature cache for WRITE-REPLY statements.
  Bytes write_sig_for(ObjectId object, const Timestamp& ts, sim::Time& cost);

  // Metrics helpers: every handled request ends in exactly one of these.
  // Both bump the named Counters entry; with a bound registry they also
  // bump the scoped grant/reject totals.
  void granted(const char* counter);
  void dropped(const char* counter);
  // Records current prepare-list sizes into the shared histograms (no-op
  // without a bound registry).
  void record_list_sizes(const ObjectState& state);

  // Shared request-validity checks.
  [[nodiscard]] bool verify_client_sig(quorum::ClientId client,
                                       BytesView payload, BytesView sig,
                                       sim::Time& cost);
  [[nodiscard]] bool valid_prepare_cert(const PrepareCertificate& cert,
                                        ObjectId object, sim::Time& cost);
  [[nodiscard]] bool valid_write_cert(const WriteCertificate& cert,
                                      ObjectId object, sim::Time& cost);

  quorum::QuorumConfig config_;
  ReplicaId id_;
  crypto::Keystore& keystore_;
  crypto::Signer signer_;
  rpc::Transport& transport_;
  sim::Scheduler& sim_;
  ReplicaOptions options_;

  // Absorbs a write certificate into `state`, tallying reclaimed
  // prepare/optlist entries ("gc_reclaimed") and dropping the
  // now-superseded precomputed WRITE-REPLY signatures for the object
  // ("sig_cache_gc") — the write certificate proves those timestamps
  // completed, so no future WRITE for them needs the cached signature.
  void absorb_and_gc(ObjectState& state, const Timestamp& wcert_ts);

  // LRU maintenance for the resident-object cap.
  void touch_lru(ObjectId id);
  // Evicts coldest objects until the cap holds, never evicting `keep`
  // (the object the current handler still references).
  void enforce_resident_cap(ObjectId keep);

  std::map<ObjectId, ObjectState> objects_;
  // Serialized ObjectStates evicted under max_resident_objects — the
  // stand-in for a real cold store (disk / remote KV). Blobs round-trip
  // through ObjectState::encode/decode, lists included.
  std::map<ObjectId, Bytes> cold_store_;
  // Recency list, most-recent first, with positions for O(log n) touch.
  std::list<ObjectId> lru_;
  std::map<ObjectId, std::list<ObjectId>::iterator> lru_pos_;
  // (object, ts) → precomputed WRITE-REPLY signature.
  std::map<std::pair<ObjectId, std::pair<std::uint64_t, ClientId>>, Bytes>
      write_sig_cache_;
  std::set<quorum::ClientId> acl_;
  Counters metrics_;

  // Same-tick batching state. `current_batch_size_` is nonzero only
  // while flush_batch is dispatching, so reply() can attribute replies
  // to a multi-message batch ("batched_replies").
  struct PendingEnvelope {
    sim::NodeId from;
    rpc::Envelope env;
  };
  std::vector<PendingEnvelope> pending_batch_;
  sim::TimerId flush_timer_ = 0;
  bool flush_scheduled_ = false;
  std::size_t current_batch_size_ = 0;

  // Reply-signing amortization state (valid only inside flush_batch).
  struct PendingReply {
    sim::NodeId to;
    rpc::Envelope env;
    sim::Time cost;
  };
  std::vector<PendingReply> pending_replies_;
  std::map<sim::NodeId, std::size_t> batch_auth_counts_;
  // Sender principal claimed by each node's batched requests, so
  // flush_replies can aim the ReplyBatch MAC in mac_auth mode.
  std::map<sim::NodeId, crypto::PrincipalId> batch_auth_principal_;
  bool collecting_replies_ = false;

  // Serial-server watermark (serialize_processing): the virtual time at
  // which this replica's CPU frees up; each costed reply starts no
  // earlier.
  sim::Time busy_until_ = 0;

  // Crash-recovery state-transfer session: one in-flight QuorumCall per
  // object being rebuilt, keyed by rpc id. Snapshots are kept per
  // target index so the merge sees them in replica order regardless of
  // reply arrival order (determinism).
  struct RecoveryCall {
    ObjectId object = 0;
    crypto::Nonce nonce;
    std::map<std::uint32_t, ObjectState> snapshots;
    std::unique_ptr<rpc::QuorumCall> call;
  };
  std::map<std::uint64_t, RecoveryCall> recovery_calls_;
  // Finished calls park here until no QuorumCall frame is on the stack
  // (same pattern as Client::retired_calls_).
  std::vector<std::unique_ptr<rpc::QuorumCall>> retired_recovery_calls_;
  std::uint64_t next_recovery_rpc_ = 1;
  RecoveryDone recovery_done_;

  // Pre-resolved registry handles (all null without options.registry).
  metrics::Counter* grants_ = nullptr;
  metrics::Counter* rejects_ = nullptr;
  metrics::Gauge* resident_gauge_ = nullptr;
  Histogram* plist_size_ = nullptr;
  Histogram* optlist_size_ = nullptr;
};

}  // namespace bftbc::core
