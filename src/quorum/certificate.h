// Certificates: quorums of signed statements vouching for a fact (§3.2).
//
// A *prepare certificate* for (ts, h) is 2f+1 PREPARE-REPLY statements
// from distinct replicas, all for the same timestamp and hash — proof a
// quorum admitted the write intention. A *write certificate* for ts is
// 2f+1 WRITE-REPLY statements — proof the write completed at a quorum.
//
// Certificates are transferable proofs: generated for one client, later
// shown by other clients (a prepare certificate read in phase 1 justifies
// the next client's timestamp choice) or by replicas. Validation is
// therefore entirely self-contained given the quorum configuration and
// the public keys.
//
// The genesis prepare certificate — timestamp 〈0,0〉, hash of the empty
// value, no signatures — is the one conventionally-valid certificate, so
// freshly initialized replicas can answer phase-1 reads.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "crypto/signature.h"
#include "quorum/config.h"
#include "quorum/statements.h"
#include "util/status.h"

namespace bftbc::quorum {

// Signatures keyed by replica id; std::map keeps encoding canonical.
using SignatureSet = std::map<ReplicaId, Bytes>;

class PrepareCertificate {
 public:
  PrepareCertificate() = default;
  PrepareCertificate(ObjectId object, Timestamp ts, crypto::Digest hash,
                     SignatureSet signatures)
      : object_(object),
        ts_(ts),
        hash_(hash),
        signatures_(std::move(signatures)) {}

  // The conventional certificate for the initial state of an object.
  static PrepareCertificate genesis(ObjectId object);
  bool is_genesis() const;

  ObjectId object() const { return object_; }
  const Timestamp& ts() const { return ts_; }          // paper's c.ts
  const crypto::Digest& hash() const { return hash_; } // paper's c.h
  const SignatureSet& signatures() const { return signatures_; }

  // Full validation: quorum-size distinct in-range replicas, every
  // signature verifying over the prepare-reply statement bytes.
  [[nodiscard]] Status validate(const QuorumConfig& config,
                                const crypto::Keystore& keystore) const;

  void encode(Writer& w) const;
  static PrepareCertificate decode(Reader& r);

  std::string to_string() const;

  friend bool operator==(const PrepareCertificate& a,
                         const PrepareCertificate& b) {
    return a.object_ == b.object_ && a.ts_ == b.ts_ && a.hash_ == b.hash_ &&
           a.signatures_ == b.signatures_;
  }

 private:
  ObjectId object_ = 0;
  Timestamp ts_;
  crypto::Digest hash_{};
  SignatureSet signatures_;
};

class WriteCertificate {
 public:
  WriteCertificate() = default;
  WriteCertificate(ObjectId object, Timestamp ts, SignatureSet signatures)
      : object_(object), ts_(ts), signatures_(std::move(signatures)) {}

  ObjectId object() const { return object_; }
  const Timestamp& ts() const { return ts_; }
  const SignatureSet& signatures() const { return signatures_; }

  [[nodiscard]] Status validate(const QuorumConfig& config,
                                const crypto::Keystore& keystore) const;

  void encode(Writer& w) const;
  static WriteCertificate decode(Reader& r);

  std::string to_string() const;

  friend bool operator==(const WriteCertificate& a, const WriteCertificate& b) {
    return a.object_ == b.object_ && a.ts_ == b.ts_ &&
           a.signatures_ == b.signatures_;
  }

 private:
  ObjectId object_ = 0;
  Timestamp ts_;
  SignatureSet signatures_;
};

// SHA-256 of the empty value — the hash carried by every genesis prepare
// certificate. Computed once and cached.
const crypto::Digest& genesis_value_hash();

// Helper shared by both certificate classes (and by the baselines):
// accepts iff >= q distinct in-range replicas have *valid* signatures
// over `statement`. Invalid entries are skipped, not fatal — a Byzantine
// node must not be able to poison an honest quorum by appending garbage.
// Verification is memoized through Keystore::verify_cached, and the scan
// stops as soon as q signatures are confirmed.
[[nodiscard]] Status validate_signature_quorum(const SignatureSet& signatures,
                                               BytesView statement,
                                               const QuorumConfig& config,
                                               const crypto::Keystore& keystore);

// Hard upper bound on entries in an encoded signature set; exceeding it
// marks the Reader failed (the message is rejected, not truncated).
inline constexpr std::size_t kMaxSignatureSetEntries = 1024;

void encode_signature_set(Writer& w, const SignatureSet& sigs);
SignatureSet decode_signature_set(Reader& r);

}  // namespace bftbc::quorum
