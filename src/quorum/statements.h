// Signed statements — the atoms of certificates.
//
// A statement is the exact byte string a replica signs. Statement bytes
// are domain-separated with a tag so a signature over one statement kind
// can never be replayed as another, and they carry the object id so
// certificates cannot migrate between objects.
//
//   PREPARE-REPLY: 〈tag, object, ts, h〉σr   (paper's 〈PREPARE-REPLY, ts, h〉σr)
//   WRITE-REPLY:   〈tag, object, ts〉σr      (paper's 〈WRITE-REPLY, ts〉σr)
#pragma once

#include <cstdint>

#include "crypto/sha256.h"
#include "quorum/timestamp.h"
#include "util/codec.h"

namespace bftbc::quorum {

using ObjectId = std::uint64_t;

enum class StatementTag : std::uint8_t {
  kPrepareReply = 1,
  kWriteReply = 2,
};

// Exact signed bytes of 〈PREPARE-REPLY, ts, h〉 for an object.
inline Bytes prepare_reply_statement(ObjectId object, const Timestamp& ts,
                                     const crypto::Digest& hash) {
  Writer w;
  w.put_u8(static_cast<std::uint8_t>(StatementTag::kPrepareReply));
  w.put_u64(object);
  ts.encode(w);
  w.put_raw(crypto::digest_view(hash));
  return std::move(w).take();
}

// Exact signed bytes of 〈WRITE-REPLY, ts〉 for an object.
inline Bytes write_reply_statement(ObjectId object, const Timestamp& ts) {
  Writer w;
  w.put_u8(static_cast<std::uint8_t>(StatementTag::kWriteReply));
  w.put_u64(object);
  ts.encode(w);
  return std::move(w).take();
}

}  // namespace bftbc::quorum
