// Timestamps 〈val, client-id〉 (paper §3.2.1).
//
// "Our protocols require that different clients choose different
//  timestamps, and therefore we construct timestamps by concatenating a
//  sequence number with a client identifier."
//
// succ(ts, c) = 〈ts.val + 1, c〉 ; order is (val, id) lexicographic.
// Embedding the writer's identity is also what lets replicas enforce
// that a prepare's timestamp belongs to the requesting client, which is
// the defense against timestamp-space exhaustion (§3.2 attack 3).
#pragma once

#include <cstdint>
#include <string>

#include "util/codec.h"

namespace bftbc::quorum {

using ClientId = std::uint32_t;

struct Timestamp {
  std::uint64_t val = 0;
  ClientId id = 0;

  static Timestamp zero() { return {}; }
  bool is_zero() const { return val == 0 && id == 0; }

  // The paper's succ function.
  Timestamp succ(ClientId c) const { return Timestamp{val + 1, c}; }

  friend bool operator==(const Timestamp& a, const Timestamp& b) {
    return a.val == b.val && a.id == b.id;
  }
  friend bool operator!=(const Timestamp& a, const Timestamp& b) {
    return !(a == b);
  }
  friend bool operator<(const Timestamp& a, const Timestamp& b) {
    if (a.val != b.val) return a.val < b.val;
    return a.id < b.id;
  }
  friend bool operator<=(const Timestamp& a, const Timestamp& b) {
    return a < b || a == b;
  }
  friend bool operator>(const Timestamp& a, const Timestamp& b) { return b < a; }
  friend bool operator>=(const Timestamp& a, const Timestamp& b) {
    return b <= a;
  }

  void encode(Writer& w) const {
    w.put_u64(val);
    w.put_u32(id);
  }
  static Timestamp decode(Reader& r) {
    Timestamp ts;
    ts.val = r.get_u64();
    ts.id = r.get_u32();
    return ts;
  }

  std::string to_string() const {
    return "<" + std::to_string(val) + "," + std::to_string(id) + ">";
  }
};

}  // namespace bftbc::quorum
