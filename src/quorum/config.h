// Quorum-system configuration and the principal directory.
//
// BFT-BC uses n = 3f+1 replicas with quorums of q = 2f+1 (any two quorums
// intersect in >= f+1 replicas, at least one of which is correct). The
// Phalanx-style baseline uses masking quorums: n = 4f+1, q = 3f+1 (two
// quorums intersect in >= 2f+1, a majority of which are correct).
//
// Principals: one flat 32-bit id space shared with crypto::PrincipalId.
// Clients occupy the low half (their ids embed into timestamps); replica
// r of a group gets the high-bit id kReplicaBase + r.
#pragma once

#include <cassert>
#include <cstdint>

#include "crypto/signature.h"
#include "quorum/timestamp.h"

namespace bftbc::quorum {

using ReplicaId = std::uint32_t;

inline constexpr crypto::PrincipalId kReplicaBase = 0x80000000u;

inline crypto::PrincipalId replica_principal(ReplicaId r) {
  return kReplicaBase + r;
}

inline bool is_replica_principal(crypto::PrincipalId p) {
  return p >= kReplicaBase;
}

inline crypto::PrincipalId client_principal(ClientId c) {
  assert(c < kReplicaBase);
  return c;
}

struct QuorumConfig {
  std::uint32_t n = 4;  // replica group size
  std::uint32_t q = 3;  // quorum size
  std::uint32_t f = 1;  // tolerated replica failures

  // BFT-BC (and classic BQS) dissemination quorums: 3f+1 / 2f+1.
  static QuorumConfig bft_bc(std::uint32_t f) {
    return {3 * f + 1, 2 * f + 1, f};
  }

  // Masking quorums for the Phalanx-style baseline: 4f+1 / 3f+1.
  static QuorumConfig masking(std::uint32_t f) {
    return {4 * f + 1, 3 * f + 1, f};
  }

  bool valid_replica(ReplicaId r) const { return r < n; }

  friend bool operator==(const QuorumConfig& a, const QuorumConfig& b) {
    return a.n == b.n && a.q == b.q && a.f == b.f;
  }
};

}  // namespace bftbc::quorum
