#include "quorum/certificate.h"

#include "util/hex.h"

namespace bftbc::quorum {

void encode_signature_set(Writer& w, const SignatureSet& sigs) {
  w.put_varint(sigs.size());
  for (const auto& [replica, sig] : sigs) {
    w.put_u32(replica);
    w.put_bytes(sig);
  }
}

SignatureSet decode_signature_set(Reader& r) {
  SignatureSet sigs;
  const std::uint64_t count = r.get_varint();
  // Hard cap stops a malicious encoder from claiming 2^60 entries.
  if (count > 1024) return sigs;
  for (std::uint64_t i = 0; i < count && r.ok(); ++i) {
    const ReplicaId replica = r.get_u32();
    sigs[replica] = r.get_bytes();
  }
  return sigs;
}

Status validate_signature_quorum(const SignatureSet& signatures,
                                 BytesView statement,
                                 const QuorumConfig& config,
                                 const crypto::Keystore& keystore) {
  std::uint32_t valid = 0;
  for (const auto& [replica, sig] : signatures) {
    if (!config.valid_replica(replica))
      return bad_certificate("replica id out of range");
    if (!keystore.verify(replica_principal(replica), statement, sig))
      return bad_certificate("signature does not verify");
    ++valid;
  }
  // std::map keys are unique, so `valid` counts distinct replicas.
  if (valid < config.q)
    return bad_certificate("fewer than a quorum of signatures");
  return Status::ok();
}

// ------------------------------------------------------------ prepare

PrepareCertificate PrepareCertificate::genesis(ObjectId object) {
  return PrepareCertificate(object, Timestamp::zero(),
                            crypto::sha256(BytesView{}), {});
}

bool PrepareCertificate::is_genesis() const {
  return ts_.is_zero() && signatures_.empty() &&
         hash_ == crypto::sha256(BytesView{});
}

Status PrepareCertificate::validate(const QuorumConfig& config,
                                    const crypto::Keystore& keystore) const {
  if (is_genesis()) return Status::ok();
  if (ts_.is_zero()) return bad_certificate("non-genesis cert with zero ts");
  const Bytes stmt = prepare_reply_statement(object_, ts_, hash_);
  return validate_signature_quorum(signatures_, stmt, config, keystore);
}

void PrepareCertificate::encode(Writer& w) const {
  w.put_u64(object_);
  ts_.encode(w);
  w.put_raw(crypto::digest_view(hash_));
  encode_signature_set(w, signatures_);
}

PrepareCertificate PrepareCertificate::decode(Reader& r) {
  PrepareCertificate c;
  c.object_ = r.get_u64();
  c.ts_ = Timestamp::decode(r);
  const Bytes h = r.get_raw(crypto::kDigestSize);
  crypto::digest_from_bytes(h, c.hash_);
  c.signatures_ = decode_signature_set(r);
  return c;
}

std::string PrepareCertificate::to_string() const {
  return "PrepCert{obj=" + std::to_string(object_) + " ts=" + ts_.to_string() +
         " h=" + hex_prefix(crypto::digest_view(hash_)) +
         " sigs=" + std::to_string(signatures_.size()) + "}";
}

// ------------------------------------------------------------ write

Status WriteCertificate::validate(const QuorumConfig& config,
                                  const crypto::Keystore& keystore) const {
  // A zero-timestamp write certificate is legitimate: in the strong
  // variant (§7) a quorum vouches "the genesis write completed" for the
  // first writer of an object. The quorum requirement below still
  // guards it — an empty signature set never validates.
  const Bytes stmt = write_reply_statement(object_, ts_);
  return validate_signature_quorum(signatures_, stmt, config, keystore);
}

void WriteCertificate::encode(Writer& w) const {
  w.put_u64(object_);
  ts_.encode(w);
  encode_signature_set(w, signatures_);
}

WriteCertificate WriteCertificate::decode(Reader& r) {
  WriteCertificate c;
  c.object_ = r.get_u64();
  c.ts_ = Timestamp::decode(r);
  c.signatures_ = decode_signature_set(r);
  return c;
}

std::string WriteCertificate::to_string() const {
  return "WriteCert{obj=" + std::to_string(object_) +
         " ts=" + ts_.to_string() +
         " sigs=" + std::to_string(signatures_.size()) + "}";
}

}  // namespace bftbc::quorum
