#include "quorum/certificate.h"

#include "util/hex.h"

namespace bftbc::quorum {

void encode_signature_set(Writer& w, const SignatureSet& sigs) {
  w.put_varint(sigs.size());
  for (const auto& [replica, sig] : sigs) {
    w.put_u32(replica);
    w.put_bytes(sig);
  }
}

SignatureSet decode_signature_set(Reader& r) {
  SignatureSet sigs;
  const std::uint64_t count = r.get_varint();
  // Hard cap stops a malicious encoder from claiming 2^60 entries. The
  // cap is a protocol violation, not a truncation point: mark the reader
  // failed so the whole message is rejected instead of silently parsing
  // as "no signatures".
  if (count > kMaxSignatureSetEntries) {
    r.fail();
    return sigs;
  }
  for (std::uint64_t i = 0; i < count; ++i) {
    const ReplicaId replica = r.get_u32();
    Bytes sig = r.get_bytes();
    if (!r.ok()) return {};  // never hand back a partial set
    sigs[replica] = std::move(sig);
  }
  return sigs;
}

Status validate_signature_quorum(const SignatureSet& signatures,
                                 BytesView statement,
                                 const QuorumConfig& config,
                                 const crypto::Keystore& keystore) {
  // A certificate is "a quorum of valid signed statements" (§3.2): count
  // the entries that verify and accept once q distinct replicas are
  // confirmed. Invalid entries — an out-of-range id or a garbage
  // signature a Byzantine node appended alongside an honest quorum — are
  // skipped, never fatal; rejecting outright would let one poisoned
  // entry invalidate an otherwise-valid certificate.
  //
  // The checks go through Keystore::verify_batch in quorum-sized
  // chunks: each chunk holds exactly the signatures still needed to
  // reach q, so the early-exit property holds — a certificate carrying
  // n signatures costs q checks when the first q verify, exactly like
  // the old one-at-a-time loop (pinned by CertificateCacheTest.
  // EarlyExitStopsAtQuorum) — while the chunk itself shares one cache
  // pass and, with a worker pool attached to the keystore, fans the
  // uncached public-key checks out across workers instead of running
  // them back to back (bench_auth_cost measures the amortization).
  // Verdicts match the per-item verify_cached path bit for bit.
  std::uint32_t valid = 0;
  auto it = signatures.begin();
  std::vector<crypto::Keystore::VerifyItem> chunk;
  while (valid < config.q) {
    chunk.clear();
    const std::size_t need = config.q - valid;
    while (chunk.size() < need && it != signatures.end()) {
      const auto& [replica, sig] = *it;
      ++it;
      if (!config.valid_replica(replica)) continue;
      crypto::Keystore::VerifyItem item;
      item.principal = replica_principal(replica);
      item.statement.assign(statement.begin(), statement.end());
      item.sig = sig;
      chunk.push_back(std::move(item));
    }
    if (chunk.empty()) break;  // candidates exhausted below quorum
    // Real-check count is already tallied by the keystore's counters.
    (void)keystore.verify_batch(chunk);
    for (const crypto::Keystore::VerifyItem& item : chunk) {
      if (item.valid) ++valid;
    }
  }
  if (valid < config.q)
    return bad_certificate("fewer than a quorum of valid signatures");
  return Status::ok();
}

// ------------------------------------------------------------ prepare

const crypto::Digest& genesis_value_hash() {
  // Computed once: is_genesis() runs on every certificate validation, and
  // hashing the empty value each time was a measurable hot-path tax.
  static const crypto::Digest digest = crypto::sha256(BytesView{});
  return digest;
}

PrepareCertificate PrepareCertificate::genesis(ObjectId object) {
  return PrepareCertificate(object, Timestamp::zero(), genesis_value_hash(),
                            {});
}

bool PrepareCertificate::is_genesis() const {
  return ts_.is_zero() && signatures_.empty() &&
         hash_ == genesis_value_hash();
}

Status PrepareCertificate::validate(const QuorumConfig& config,
                                    const crypto::Keystore& keystore) const {
  if (is_genesis()) return Status::ok();
  if (ts_.is_zero()) return bad_certificate("non-genesis cert with zero ts");
  const Bytes stmt = prepare_reply_statement(object_, ts_, hash_);
  return validate_signature_quorum(signatures_, stmt, config, keystore);
}

void PrepareCertificate::encode(Writer& w) const {
  w.put_u64(object_);
  ts_.encode(w);
  w.put_raw(crypto::digest_view(hash_));
  encode_signature_set(w, signatures_);
}

PrepareCertificate PrepareCertificate::decode(Reader& r) {
  PrepareCertificate c;
  c.object_ = r.get_u64();
  c.ts_ = Timestamp::decode(r);
  const Bytes h = r.get_raw(crypto::kDigestSize);
  crypto::digest_from_bytes(h, c.hash_);
  c.signatures_ = decode_signature_set(r);
  return c;
}

std::string PrepareCertificate::to_string() const {
  return "PrepCert{obj=" + std::to_string(object_) + " ts=" + ts_.to_string() +
         " h=" + hex_prefix(crypto::digest_view(hash_)) +
         " sigs=" + std::to_string(signatures_.size()) + "}";
}

// ------------------------------------------------------------ write

Status WriteCertificate::validate(const QuorumConfig& config,
                                  const crypto::Keystore& keystore) const {
  // A zero-timestamp write certificate is legitimate: in the strong
  // variant (§7) a quorum vouches "the genesis write completed" for the
  // first writer of an object. The quorum requirement below still
  // guards it — an empty signature set never validates.
  const Bytes stmt = write_reply_statement(object_, ts_);
  return validate_signature_quorum(signatures_, stmt, config, keystore);
}

void WriteCertificate::encode(Writer& w) const {
  w.put_u64(object_);
  ts_.encode(w);
  encode_signature_set(w, signatures_);
}

WriteCertificate WriteCertificate::decode(Reader& r) {
  WriteCertificate c;
  c.object_ = r.get_u64();
  c.ts_ = Timestamp::decode(r);
  c.signatures_ = decode_signature_set(r);
  return c;
}

std::string WriteCertificate::to_string() const {
  return "WriteCert{obj=" + std::to_string(object_) +
         " ts=" + ts_.to_string() +
         " sigs=" + std::to_string(signatures_.size()) + "}";
}

}  // namespace bftbc::quorum
